//! Full training-state checkpoints: atomic, framed, CRC-verified.
//!
//! A weights-only checkpoint silently changes the optimization trajectory on
//! resume — Adam's bias correction restarts, the moments reset, and the batch
//! sampler replays the epoch from scratch. The *train state* checkpoint
//! captures everything a resumed run needs to be bit-identical to an
//! uninterrupted one:
//!
//! - model parameters (the `MFNCKPT1` stream of `mfn_autodiff::checkpoint`),
//! - batch-norm running statistics,
//! - Adam configuration, step count, and both moment buffers,
//! - the global step counter and the epoch/batch cursor,
//! - every sampler RNG position (one per rank; a single trainer has one).
//!
//! On disk the payload sits inside a frame — magic, version, payload length,
//! CRC32 — so a torn or bit-flipped write is detected *before* any tensor is
//! decoded. Writes go to a temp file that is atomically renamed over the
//! target after `sync_all`; the previous checkpoint is rotated to
//! `<path>.prev` first, which is what [`load_train_state_with_fallback`]
//! falls back to when the newest file is corrupt.

use crate::model::MeshfreeFlowNet;
use crate::rng::RngState;
use mfn_autodiff::{read_adam, read_params, write_adam, write_params, Adam};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Frame magic for a full train-state checkpoint.
const STATE_MAGIC: &[u8; 8] = b"MFNSTAT1";
/// Frame format version.
const STATE_VERSION: u32 = 1;
/// Magic of the optional trailing adaptive-sampler section. Absent for
/// uniform-sampling runs, so their checkpoints stay byte-identical to the
/// pre-sampler format (and old checkpoints keep loading).
const SAMPLER_MAGIC: &[u8; 8] = b"MFNSMPL1";

/// Why a checkpoint could not be written or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (missing file, permissions, disk full).
    Io(io::Error),
    /// The frame is damaged: wrong magic/version, truncated payload, or a
    /// CRC mismatch. The file cannot be trusted at all.
    Corrupt(String),
    /// The frame is intact but the payload does not describe this model
    /// (parameter names/shapes, BN layout, or moment shapes differ).
    Incompatible(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Incompatible(m) => write!(f, "incompatible checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Classifies a payload-decode error: mid-payload EOF means the frame lied
/// about its content (corruption); a clean `InvalidData` means the content
/// describes a different architecture.
fn decode_err(e: io::Error) -> CheckpointError {
    match e.kind() {
        io::ErrorKind::UnexpectedEof => CheckpointError::Corrupt(format!("payload truncated: {e}")),
        io::ErrorKind::InvalidData => CheckpointError::Incompatible(e.to_string()),
        _ => CheckpointError::Io(e),
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ 0xEDB8_8320 } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Loop-position metadata stored alongside the model/optimizer state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainStateMeta {
    /// Gradient steps taken across the run's lifetime.
    pub global_step: u64,
    /// Epoch the run will execute next (or is inside of).
    pub epoch: usize,
    /// Batch index within `epoch` the run will execute next.
    pub batch_cursor: usize,
    /// Sampler stream positions — one for a single-process trainer, one per
    /// logical rank for the distributed supervisor.
    pub rngs: Vec<RngState>,
    /// Serialized adaptive-sampler (octree) states, one per rank, mirroring
    /// `rngs`. Empty for uniform-sampling runs — then no `MFNSMPL1` section
    /// is written and the payload is byte-identical to the legacy format.
    pub samplers: Vec<Vec<u8>>,
}

/// Serializes model + optimizer + loop position into a checkpoint payload
/// (the bytes inside the frame; see [`save_train_state`]).
pub fn encode_train_state(model: &MeshfreeFlowNet, opt: &Adam, meta: &TrainStateMeta) -> Vec<u8> {
    let mut buf = Vec::new();
    // Writes into a Vec cannot fail.
    buf.write_all(&meta.global_step.to_le_bytes()).expect("vec write");
    buf.write_all(&(meta.epoch as u64).to_le_bytes()).expect("vec write");
    buf.write_all(&(meta.batch_cursor as u64).to_le_bytes()).expect("vec write");
    buf.write_all(&(meta.rngs.len() as u64).to_le_bytes()).expect("vec write");
    for r in &meta.rngs {
        buf.write_all(&r.seed.to_le_bytes()).expect("vec write");
        buf.write_all(&r.words.to_le_bytes()).expect("vec write");
    }
    write_params(&model.store, &mut buf).expect("vec write");
    model.write_bn_stats(&mut buf).expect("vec write");
    write_adam(opt, &mut buf).expect("vec write");
    if !meta.samplers.is_empty() {
        buf.write_all(SAMPLER_MAGIC).expect("vec write");
        buf.write_all(&(meta.samplers.len() as u64).to_le_bytes()).expect("vec write");
        for s in &meta.samplers {
            buf.write_all(&(s.len() as u64).to_le_bytes()).expect("vec write");
            buf.write_all(s).expect("vec write");
        }
    }
    buf
}

/// Reads the optional trailing `MFNSMPL1` sampler section. Clean EOF at the
/// section boundary means a legacy/uniform payload (no section → empty vec);
/// anything partial or mislabeled is corruption.
fn read_sampler_section(r: &mut impl Read) -> Result<Vec<Vec<u8>>, CheckpointError> {
    let mut magic = [0u8; 8];
    let mut got = 0usize;
    while got < 8 {
        match r.read(&mut magic[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CheckpointError::Io(e)),
        }
    }
    if got == 0 {
        return Ok(Vec::new());
    }
    if got < 8 {
        return Err(CheckpointError::Corrupt(format!(
            "trailing section header truncated at {got} bytes"
        )));
    }
    if &magic != SAMPLER_MAGIC {
        return Err(CheckpointError::Corrupt("bad sampler-section magic".into()));
    }
    let u64le = |r: &mut dyn Read| -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(decode_err)?;
        Ok(u64::from_le_bytes(b))
    };
    let count = u64le(r)? as usize;
    if count == 0 || count > 1 << 20 {
        return Err(CheckpointError::Corrupt(format!("implausible sampler count {count}")));
    }
    let mut samplers = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u64le(r)? as usize;
        if len > 1 << 30 {
            return Err(CheckpointError::Corrupt(format!("implausible sampler size {len}")));
        }
        let mut bytes = vec![0u8; len];
        r.read_exact(&mut bytes).map_err(decode_err)?;
        samplers.push(bytes);
    }
    Ok(samplers)
}

/// Restores a payload produced by [`encode_train_state`] into `model`,
/// returning the rebuilt optimizer and loop metadata.
pub fn decode_train_state(
    model: &mut MeshfreeFlowNet,
    r: &mut impl Read,
) -> Result<(Adam, TrainStateMeta), CheckpointError> {
    let u64le = |r: &mut dyn Read| -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(decode_err)?;
        Ok(u64::from_le_bytes(b))
    };
    let global_step = u64le(r)?;
    let epoch = u64le(r)? as usize;
    let batch_cursor = u64le(r)? as usize;
    let n_rngs = u64le(r)? as usize;
    if n_rngs == 0 || n_rngs > 1 << 20 {
        return Err(CheckpointError::Corrupt(format!("implausible RNG count {n_rngs}")));
    }
    let mut rngs = Vec::with_capacity(n_rngs);
    for _ in 0..n_rngs {
        let seed = u64le(r)?;
        let words = u64le(r)?;
        rngs.push(RngState { seed, words });
    }
    read_params(&mut model.store, r).map_err(decode_err)?;
    model.read_bn_stats(r).map_err(decode_err)?;
    let opt = read_adam(&model.store, r).map_err(decode_err)?;
    let samplers = read_sampler_section(r)?;
    if !samplers.is_empty() && samplers.len() != rngs.len() {
        return Err(CheckpointError::Corrupt(format!(
            "{} sampler states for {} RNG streams",
            samplers.len(),
            rngs.len()
        )));
    }
    Ok((opt, TrainStateMeta { global_step, epoch, batch_cursor, rngs, samplers }))
}

/// Restores only the inference-relevant slice of a train-state payload —
/// loop metadata, model parameters, and BN running statistics — and stops
/// there. The trailing Adam section is never read or materialized, so a
/// serving process cannot observe or perturb optimizer moments even by
/// accident; the sampler RNG states in the returned meta are positions, not
/// live generators.
pub fn decode_inference_state(
    model: &mut MeshfreeFlowNet,
    r: &mut impl Read,
) -> Result<TrainStateMeta, CheckpointError> {
    let u64le = |r: &mut dyn Read| -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(decode_err)?;
        Ok(u64::from_le_bytes(b))
    };
    let global_step = u64le(r)?;
    let epoch = u64le(r)? as usize;
    let batch_cursor = u64le(r)? as usize;
    let n_rngs = u64le(r)? as usize;
    if n_rngs == 0 || n_rngs > 1 << 20 {
        return Err(CheckpointError::Corrupt(format!("implausible RNG count {n_rngs}")));
    }
    let mut rngs = Vec::with_capacity(n_rngs);
    for _ in 0..n_rngs {
        let seed = u64le(r)?;
        let words = u64le(r)?;
        rngs.push(RngState { seed, words });
    }
    read_params(&mut model.store, r).map_err(decode_err)?;
    model.read_bn_stats(r).map_err(decode_err)?;
    Ok(TrainStateMeta { global_step, epoch, batch_cursor, rngs, samplers: Vec::new() })
}

/// The rotation target for the previous good checkpoint.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut p = path.as_os_str().to_os_string();
    p.push(".prev");
    PathBuf::from(p)
}

/// Atomically writes `payload` to `path` inside a CRC frame.
///
/// The frame goes to `<path>.tmp.<pid>`, is `sync_all`ed, then renamed over
/// `path`; an existing checkpoint is first rotated to `<path>.prev`. A crash
/// at any point leaves either the old file, the old file plus a stale temp,
/// or the new file — never a half-written `path`. Returns total bytes
/// written (frame included).
pub fn save_train_state(path: &Path, payload: &[u8]) -> Result<u64, CheckpointError> {
    let tmp = {
        let mut p = path.as_os_str().to_os_string();
        p.push(format!(".tmp.{}", std::process::id()));
        PathBuf::from(p)
    };
    let total = {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(STATE_MAGIC)?;
        f.write_all(&STATE_VERSION.to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(&crc32(payload).to_le_bytes())?;
        f.write_all(payload)?;
        f.sync_all()?;
        8 + 4 + 8 + 4 + payload.len() as u64
    };
    if path.exists() {
        std::fs::rename(path, prev_path(path))?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(total)
}

/// Reads and verifies the frame at `path`, returning the payload bytes.
pub fn load_train_state(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 24 {
        return Err(CheckpointError::Corrupt(format!(
            "file is {} bytes, header is 24",
            bytes.len()
        )));
    }
    if &bytes[0..8] != STATE_MAGIC {
        return Err(CheckpointError::Corrupt("bad magic bytes".into()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != STATE_VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "format version {version}, expected {STATE_VERSION}"
        )));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[24..];
    if payload.len() != len {
        return Err(CheckpointError::Corrupt(format!(
            "payload is {} bytes, header claims {len} (torn write?)",
            payload.len()
        )));
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(CheckpointError::Corrupt(format!(
            "CRC mismatch: stored {crc:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(bytes[24..].to_vec())
}

/// Like [`load_train_state`], but when `path` is missing or damaged, falls
/// back to the rotated `<path>.prev` — the supervisor's rollback source
/// after a torn write. The original error is returned if the fallback is
/// absent or also bad.
pub fn load_train_state_with_fallback(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    match load_train_state(path) {
        Ok(payload) => Ok(payload),
        Err(primary) => {
            let prev = prev_path(path);
            if prev.exists() {
                load_train_state(&prev).map_err(|_| primary)
            } else {
                Err(primary)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // One flipped bit changes the sum.
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mfn_state_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn frame_roundtrip_and_rotation() {
        let dir = tmpdir("frame");
        let path = dir.join("state.ckpt");
        let bytes = save_train_state(&path, b"first payload").expect("save 1");
        assert_eq!(bytes, 24 + 13);
        assert_eq!(load_train_state(&path).expect("load 1"), b"first payload");
        // Second save rotates the first to .prev.
        save_train_state(&path, b"second payload").expect("save 2");
        assert_eq!(load_train_state(&path).expect("load 2"), b"second payload");
        assert_eq!(load_train_state(&prev_path(&path)).expect("load prev"), b"first payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_and_bitflip_are_corrupt_not_panics() {
        let dir = tmpdir("corrupt");
        let path = dir.join("state.ckpt");
        save_train_state(&path, b"some payload bytes here").expect("save");
        let good = std::fs::read(&path).expect("read");
        // Truncated mid-payload.
        std::fs::write(&path, &good[..good.len() - 5]).expect("write");
        assert!(matches!(load_train_state(&path), Err(CheckpointError::Corrupt(_))));
        // One byte flipped in the payload.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).expect("write");
        assert!(matches!(load_train_state(&path), Err(CheckpointError::Corrupt(_))));
        // Truncated inside the header.
        std::fs::write(&path, &good[..10]).expect("write");
        assert!(matches!(load_train_state(&path), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_from_disagreeing_config_is_incompatible() {
        use crate::config::MfnConfig;
        use crate::infer::FrozenModel;
        use crate::model::MeshfreeFlowNet;
        use mfn_autodiff::{Adam, AdamConfig};
        use mfn_data::PatchSpec;

        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;

        let model = MeshfreeFlowNet::new(cfg.clone());
        let opt = Adam::new(&model.store, AdamConfig::default());
        let meta = TrainStateMeta {
            global_step: 7,
            epoch: 1,
            batch_cursor: 2,
            rngs: vec![RngState { seed: 3, words: 11 }],
            samplers: Vec::new(),
        };
        let dir = tmpdir("drift");
        let path = dir.join("state.ckpt");
        save_train_state(&path, &encode_train_state(&model, &opt, &meta)).expect("save");

        // The matching config restores cleanly.
        let ok = FrozenModel::load_state(cfg.clone(), &path).expect("matching config");
        assert_eq!(ok.trained_steps(), 7);

        // A config that disagrees with the one the checkpoint was written
        // under (wider U-Net stem → different parameter shapes) must be a
        // typed Incompatible, not silently-misloaded weights or a panic.
        let mut wider = cfg.clone();
        wider.base_channels = 8;
        match FrozenModel::load_state(wider, &path) {
            Err(CheckpointError::Incompatible(m)) => {
                // base_channels changes both parameter count and shapes;
                // whichever check fires first must name the disagreement.
                assert!(
                    m.contains("mismatch") || m.contains("parameters"),
                    "message should name the mismatch: {m}"
                )
            }
            Err(other) => panic!("expected Incompatible, got {other:?}"),
            Ok(_) => panic!("expected Incompatible, got a loaded model"),
        }

        // Structural drift (extra MLP layer → different parameter count)
        // is caught too, before any tensor data is interpreted.
        let mut deeper = cfg;
        deeper.mlp_hidden = vec![16, 16, 16];
        assert!(matches!(
            FrozenModel::load_state(deeper, &path),
            Err(CheckpointError::Incompatible(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampler_section_roundtrips_and_legacy_payloads_still_load() {
        use crate::config::MfnConfig;
        use crate::model::MeshfreeFlowNet;
        use mfn_autodiff::{Adam, AdamConfig};
        use mfn_data::PatchSpec;

        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let model = MeshfreeFlowNet::new(cfg.clone());
        let opt = Adam::new(&model.store, AdamConfig::default());

        let plain = TrainStateMeta {
            global_step: 3,
            epoch: 0,
            batch_cursor: 3,
            rngs: vec![RngState { seed: 5, words: 17 }],
            samplers: Vec::new(),
        };
        let with_tree = TrainStateMeta { samplers: vec![vec![1u8, 2, 3, 4, 5]], ..plain.clone() };

        let legacy = encode_train_state(&model, &opt, &plain);
        let extended = encode_train_state(&model, &opt, &with_tree);
        // The sampler section strictly appends: uniform runs write the
        // legacy bytes, adaptive runs the legacy bytes plus the section.
        assert!(extended.starts_with(&legacy));
        assert!(extended.len() > legacy.len());

        let mut m = MeshfreeFlowNet::new(cfg.clone());
        let (_, meta) =
            decode_train_state(&mut m, &mut std::io::Cursor::new(&extended)).expect("decode");
        assert_eq!(meta, with_tree);
        let mut m = MeshfreeFlowNet::new(cfg.clone());
        let (_, meta) =
            decode_train_state(&mut m, &mut std::io::Cursor::new(&legacy)).expect("legacy");
        assert_eq!(meta, plain);

        // A sampler count that disagrees with the RNG streams is corruption.
        let two = TrainStateMeta { samplers: vec![vec![1], vec![2]], ..plain.clone() };
        let bad = encode_train_state(&model, &opt, &two);
        let mut m = MeshfreeFlowNet::new(cfg.clone());
        assert!(matches!(
            decode_train_state(&mut m, &mut std::io::Cursor::new(&bad)),
            Err(CheckpointError::Corrupt(_))
        ));
        // A truncated sampler section is corruption, not a clean load.
        let cut = &extended[..extended.len() - 2];
        let mut m = MeshfreeFlowNet::new(cfg);
        assert!(matches!(
            decode_train_state(&mut m, &mut std::io::Cursor::new(cut)),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn fallback_recovers_previous_good_checkpoint() {
        let dir = tmpdir("fallback");
        let path = dir.join("state.ckpt");
        save_train_state(&path, b"old good state").expect("save 1");
        save_train_state(&path, b"new state").expect("save 2");
        // Corrupt the newest file; fallback must serve the rotated one.
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        assert!(load_train_state(&path).is_err());
        assert_eq!(load_train_state_with_fallback(&path).expect("fallback"), b"old good state");
        // With no .prev, the original error surfaces.
        std::fs::remove_file(prev_path(&path)).expect("rm prev");
        assert!(matches!(load_train_state_with_fallback(&path), Err(CheckpointError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
