//! Model and training configuration.

use crate::losses::ConstraintSet;
use mfn_autodiff::Activation;
use mfn_data::PatchSpec;
use serde::{Deserialize, Serialize};

/// Architecture + loss configuration for MeshfreeFlowNet.
#[derive(Debug, Clone, PartialEq)]
pub struct MfnConfig {
    /// LR patch / latent grid dims the model is built for.
    pub patch: PatchSpec,
    /// Input physical channels (always 4 for Rayleigh–Bénard: `T, p, u, w`).
    pub in_channels: usize,
    /// Output physical channels.
    pub out_channels: usize,
    /// Channel width after the U-Net stem; doubles per contractive level
    /// (paper: 16 → 256 over 4 levels).
    pub base_channels: usize,
    /// Number of pooling levels in the U-Net (paper: 4, shrinking
    /// `[4,16,16]` down to `[1,1,1]` with a final all-t pool in level 5 —
    /// we pool anisotropically as Fig. 5 shows).
    pub levels: usize,
    /// Latent context vector width `n_c` (paper: 32).
    pub latent_channels: usize,
    /// Hidden widths of the continuous decoding MLP (paper:
    /// `[512, 256, 128, 64, 32]`).
    pub mlp_hidden: Vec<usize>,
    /// Decoder activation. Softplus by default so exact second derivatives
    /// exist for the PDE constraints (Fig. 5 shows ReLU; see DESIGN.md).
    pub activation: Activation,
    /// Equation-loss weight γ of Eqn. 10 (γ* = 0.0125 per Table 1).
    pub gamma: f32,
    /// Local-coordinate step of the finite-difference stencil used for the
    /// training-time PDE derivatives.
    pub fd_step: f32,
    /// Which PDE residuals enter the equation loss (the paper supports
    /// arbitrary combinations; default: all four).
    pub constraints: ConstraintSet,
    /// RNG seed for parameter initialization.
    pub seed: u64,
}

impl MfnConfig {
    /// The paper-scale configuration (Fig. 5): ~10⁷ parameters. Slow on CPU;
    /// used by `--paper-scale` runs.
    pub fn paper() -> Self {
        MfnConfig {
            patch: PatchSpec::paper(),
            in_channels: 4,
            out_channels: 4,
            base_channels: 16,
            levels: 4,
            latent_channels: 32,
            mlp_hidden: vec![512, 256, 128, 64, 32],
            activation: Activation::Softplus,
            gamma: 0.0125,
            fd_step: 2e-2,
            constraints: ConstraintSet::ALL,
            seed: 0,
        }
    }

    /// A reduced configuration that trains in seconds on a laptop-class CPU
    /// while preserving every architectural element (residual U-Net with
    /// anisotropic pooling, latent grid, continuous MLP decoder).
    pub fn small() -> Self {
        MfnConfig {
            patch: PatchSpec::small(),
            in_channels: 4,
            out_channels: 4,
            base_channels: 8,
            levels: 2,
            latent_channels: 16,
            mlp_hidden: vec![64, 64, 32],
            activation: Activation::Softplus,
            gamma: 0.0125,
            fd_step: 2e-2,
            constraints: ConstraintSet::ALL,
            seed: 0,
        }
    }

    /// Optimal equation-loss weight from the paper's Table 1 ablation.
    pub const GAMMA_STAR: f32 = 0.0125;

    /// Per-level pooling factors `[t, z, x]`, anisotropic as in Fig. 5:
    /// spatial dims pool first; `t` pools only once `z`/`x` have reached the
    /// same size, and no axis pools below 1.
    pub fn pool_factors(&self) -> Vec<[usize; 3]> {
        let (mut t, mut z, mut x) = (self.patch.nt, self.patch.nz, self.patch.nx);
        let mut out = Vec::with_capacity(self.levels);
        for _ in 0..self.levels {
            let fz = if z >= 2 { 2 } else { 1 };
            let fx = if x >= 2 { 2 } else { 1 };
            // Pool t only once it exceeds the pooled spatial extent (mirrors
            // [4,16,16]→[4,8,8]→[4,4,4]→[2,2,2]→[1,1,1]).
            let ft = if t >= 2 && t > z / fz { 2 } else { 1 };
            let f = [ft, fz, fx];
            t /= f[0];
            z /= f[1];
            x /= f[2];
            out.push(f);
        }
        out
    }

    /// MLP layer widths including input (`latent + 3` coords) and output.
    pub fn mlp_widths(&self) -> Vec<usize> {
        let mut w = Vec::with_capacity(self.mlp_hidden.len() + 2);
        w.push(self.latent_channels + 3);
        w.extend_from_slice(&self.mlp_hidden);
        w.push(self.out_channels);
        w
    }
}

/// Training-loop hyperparameters (paper Sec. 5: Adam, lr 1e-2, 100 epochs,
/// 3000 samples per epoch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Patches per mini-batch.
    pub batch_size: usize,
    /// Mini-batches per epoch.
    pub batches_per_epoch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Per-epoch multiplicative learning-rate decay (1.0 = constant lr, the
    /// paper's setting; < 1.0 anneals).
    pub lr_decay: f32,
    /// RNG seed for batch sampling.
    pub seed: u64,
    /// Write a full train-state checkpoint every N gradient steps (0
    /// disables). Takes effect only when the trainer has a checkpoint path
    /// (see `Trainer::with_checkpointing`).
    pub checkpoint_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-3,
            batch_size: 4,
            batches_per_epoch: 8,
            epochs: 10,
            grad_clip: 1.0,
            lr_decay: 1.0,
            seed: 0,
            checkpoint_every: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pooling_matches_fig5() {
        // [4,16,16] -> [4,8,8] -> [4,4,4] -> [2,2,2] -> [1,1,1]
        let cfg = MfnConfig::paper();
        let fs = cfg.pool_factors();
        assert_eq!(fs.len(), 4);
        let mut dims = [4usize, 16, 16];
        let expect = [[4, 8, 8], [4, 4, 4], [2, 2, 2], [1, 1, 1]];
        for (l, f) in fs.iter().enumerate() {
            for a in 0..3 {
                dims[a] /= f[a];
            }
            assert_eq!(dims, expect[l], "level {l} factors {f:?}");
        }
    }

    #[test]
    fn small_pooling_never_hits_zero() {
        let cfg = MfnConfig::small();
        let mut dims = [cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
        for f in cfg.pool_factors() {
            for a in 0..3 {
                assert_eq!(dims[a] % f[a], 0, "indivisible pool at {dims:?} by {f:?}");
                dims[a] /= f[a];
                assert!(dims[a] >= 1);
            }
        }
    }

    #[test]
    fn mlp_widths_shape() {
        let cfg = MfnConfig::paper();
        assert_eq!(cfg.mlp_widths(), vec![35, 512, 256, 128, 64, 32, 4]);
    }
}
