//! Model and training configuration.

use crate::losses::ConstraintSet;
use mfn_autodiff::Activation;
use mfn_data::PatchSpec;
use serde::{Deserialize, Serialize};

/// Architecture + loss configuration for MeshfreeFlowNet.
#[derive(Debug, Clone, PartialEq)]
pub struct MfnConfig {
    /// LR patch / latent grid dims the model is built for.
    pub patch: PatchSpec,
    /// Input physical channels (always 4 for Rayleigh–Bénard: `T, p, u, w`).
    pub in_channels: usize,
    /// Output physical channels.
    pub out_channels: usize,
    /// Channel width after the U-Net stem; doubles per contractive level
    /// (paper: 16 → 256 over 4 levels).
    pub base_channels: usize,
    /// Number of pooling levels in the U-Net (paper: 4, shrinking
    /// `[4,16,16]` down to `[1,1,1]` with a final all-t pool in level 5 —
    /// we pool anisotropically as Fig. 5 shows).
    pub levels: usize,
    /// Latent context vector width `n_c` (paper: 32).
    pub latent_channels: usize,
    /// Hidden widths of the continuous decoding MLP (paper:
    /// `[512, 256, 128, 64, 32]`).
    pub mlp_hidden: Vec<usize>,
    /// Decoder activation. Softplus by default so exact second derivatives
    /// exist for the PDE constraints (Fig. 5 shows ReLU; see DESIGN.md).
    pub activation: Activation,
    /// Equation-loss weight γ of Eqn. 10 (γ* = 0.0125 per Table 1).
    pub gamma: f32,
    /// Local-coordinate step of the finite-difference stencil used for the
    /// training-time PDE derivatives.
    pub fd_step: f32,
    /// Which PDE residuals enter the equation loss (the paper supports
    /// arbitrary combinations; default: all four).
    pub constraints: ConstraintSet,
    /// RNG seed for parameter initialization.
    pub seed: u64,
}

impl MfnConfig {
    /// The paper-scale configuration (Fig. 5): ~10⁷ parameters. Slow on CPU;
    /// used by `--paper-scale` runs.
    pub fn paper() -> Self {
        MfnConfig {
            patch: PatchSpec::paper(),
            in_channels: 4,
            out_channels: 4,
            base_channels: 16,
            levels: 4,
            latent_channels: 32,
            mlp_hidden: vec![512, 256, 128, 64, 32],
            activation: Activation::Softplus,
            gamma: 0.0125,
            fd_step: 2e-2,
            constraints: ConstraintSet::ALL,
            seed: 0,
        }
    }

    /// A reduced configuration that trains in seconds on a laptop-class CPU
    /// while preserving every architectural element (residual U-Net with
    /// anisotropic pooling, latent grid, continuous MLP decoder).
    pub fn small() -> Self {
        MfnConfig {
            patch: PatchSpec::small(),
            in_channels: 4,
            out_channels: 4,
            base_channels: 8,
            levels: 2,
            latent_channels: 16,
            mlp_hidden: vec![64, 64, 32],
            activation: Activation::Softplus,
            gamma: 0.0125,
            fd_step: 2e-2,
            constraints: ConstraintSet::ALL,
            seed: 0,
        }
    }

    /// Optimal equation-loss weight from the paper's Table 1 ablation.
    pub const GAMMA_STAR: f32 = 0.0125;

    /// Per-level pooling factors `[t, z, x]`, anisotropic as in Fig. 5:
    /// spatial dims pool first; `t` pools only once `z`/`x` have reached the
    /// same size, and no axis pools below 1.
    pub fn pool_factors(&self) -> Vec<[usize; 3]> {
        let (mut t, mut z, mut x) = (self.patch.nt, self.patch.nz, self.patch.nx);
        let mut out = Vec::with_capacity(self.levels);
        for _ in 0..self.levels {
            let fz = if z >= 2 { 2 } else { 1 };
            let fx = if x >= 2 { 2 } else { 1 };
            // Pool t only once it exceeds the pooled spatial extent (mirrors
            // [4,16,16]→[4,8,8]→[4,4,4]→[2,2,2]→[1,1,1]).
            let ft = if t >= 2 && t > z / fz { 2 } else { 1 };
            let f = [ft, fz, fx];
            t /= f[0];
            z /= f[1];
            x /= f[2];
            out.push(f);
        }
        out
    }

    /// MLP layer widths including input (`latent + 3` coords) and output.
    pub fn mlp_widths(&self) -> Vec<usize> {
        let mut w = Vec::with_capacity(self.mlp_hidden.len() + 2);
        w.push(self.latent_channels + 3);
        w.extend_from_slice(&self.mlp_hidden);
        w.push(self.out_channels);
        w
    }

    /// Serializes the architecture to the JSON sidecar format written next
    /// to checkpoints (`<ckpt>.cfg.json`). A `MFNSTAT1` train-state frame
    /// stores tensors by name/shape but not the architecture itself; the
    /// sidecar is what lets a serving process rebuild the exact model a
    /// checkpoint was trained with.
    pub fn to_json(&self) -> String {
        let file = ConfigFile {
            patch_nt: self.patch.nt,
            patch_nz: self.patch.nz,
            patch_nx: self.patch.nx,
            patch_queries: self.patch.queries,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            base_channels: self.base_channels,
            levels: self.levels,
            latent_channels: self.latent_channels,
            mlp_hidden: self.mlp_hidden.clone(),
            activation: match self.activation {
                Activation::Relu => "relu",
                Activation::Softplus => "softplus",
                Activation::Tanh => "tanh",
                Activation::Linear => "linear",
            }
            .to_string(),
            gamma: self.gamma,
            fd_step: self.fd_step,
            constraints: [
                self.constraints.continuity,
                self.constraints.temperature,
                self.constraints.momentum_x,
                self.constraints.momentum_z,
            ],
            seed: self.seed,
        };
        serde_json::to_string_pretty(&file).expect("config serializes")
    }

    /// Parses a sidecar produced by [`MfnConfig::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        let f: ConfigFile = serde_json::from_str(s).map_err(|e| e.to_string())?;
        let activation = match f.activation.as_str() {
            "relu" => Activation::Relu,
            "softplus" => Activation::Softplus,
            "tanh" => Activation::Tanh,
            "linear" => Activation::Linear,
            other => return Err(format!("unknown activation {other:?}")),
        };
        Ok(MfnConfig {
            patch: PatchSpec {
                nt: f.patch_nt,
                nz: f.patch_nz,
                nx: f.patch_nx,
                queries: f.patch_queries,
            },
            in_channels: f.in_channels,
            out_channels: f.out_channels,
            base_channels: f.base_channels,
            levels: f.levels,
            latent_channels: f.latent_channels,
            mlp_hidden: f.mlp_hidden,
            activation,
            gamma: f.gamma,
            fd_step: f.fd_step,
            constraints: ConstraintSet {
                continuity: f.constraints[0],
                temperature: f.constraints[1],
                momentum_x: f.constraints[2],
                momentum_z: f.constraints[3],
            },
            seed: f.seed,
        })
    }

    /// Writes the JSON sidecar to `path`.
    pub fn save_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a JSON sidecar from `path` (parse errors map to `InvalidData`).
    pub fn load_json(path: &std::path::Path) -> std::io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// On-disk representation of [`MfnConfig`]. Kept separate (plain scalars,
/// activation/constraints as data) so `mfn-autodiff` and `mfn-data` need no
/// serde dependency.
///
/// `deny_unknown_fields`: a sidecar with fields this build does not know
/// about was written by a different (newer or diverged) schema. Silently
/// dropping those fields would rebuild a model that disagrees with the one
/// the checkpoint was trained with — the drift must be a load error, not a
/// quiet default.
#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct ConfigFile {
    patch_nt: usize,
    patch_nz: usize,
    patch_nx: usize,
    patch_queries: usize,
    in_channels: usize,
    out_channels: usize,
    base_channels: usize,
    levels: usize,
    latent_channels: usize,
    mlp_hidden: Vec<usize>,
    activation: String,
    gamma: f32,
    fd_step: f32,
    constraints: [bool; 4],
    seed: u64,
}

/// Training-loop hyperparameters (paper Sec. 5: Adam, lr 1e-2, 100 epochs,
/// 3000 samples per epoch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Patches per mini-batch.
    pub batch_size: usize,
    /// Mini-batches per epoch.
    pub batches_per_epoch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Per-epoch multiplicative learning-rate decay (1.0 = constant lr, the
    /// paper's setting; < 1.0 anneals).
    pub lr_decay: f32,
    /// RNG seed for batch sampling.
    pub seed: u64,
    /// Write a full train-state checkpoint every N gradient steps (0
    /// disables). Takes effect only when the trainer has a checkpoint path
    /// (see `Trainer::with_checkpointing`).
    pub checkpoint_every: usize,
    /// Draw query points from the residual-guided octree sampler
    /// (`mfn-sample`) instead of uniformly. Off by default; the uniform
    /// path is bit-identical to a build without the sampler.
    pub adaptive_sampling: bool,
    /// Uniform blend floor `ε` of the adaptive sampler (ignored when
    /// `adaptive_sampling` is off).
    pub sampler_epsilon: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lr: 1e-3,
            batch_size: 4,
            batches_per_epoch: 8,
            epochs: 10,
            grad_clip: 1.0,
            lr_decay: 1.0,
            seed: 0,
            checkpoint_every: 0,
            adaptive_sampling: false,
            sampler_epsilon: 0.2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pooling_matches_fig5() {
        // [4,16,16] -> [4,8,8] -> [4,4,4] -> [2,2,2] -> [1,1,1]
        let cfg = MfnConfig::paper();
        let fs = cfg.pool_factors();
        assert_eq!(fs.len(), 4);
        let mut dims = [4usize, 16, 16];
        let expect = [[4, 8, 8], [4, 4, 4], [2, 2, 2], [1, 1, 1]];
        for (l, f) in fs.iter().enumerate() {
            for a in 0..3 {
                dims[a] /= f[a];
            }
            assert_eq!(dims, expect[l], "level {l} factors {f:?}");
        }
    }

    #[test]
    fn small_pooling_never_hits_zero() {
        let cfg = MfnConfig::small();
        let mut dims = [cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
        for f in cfg.pool_factors() {
            for a in 0..3 {
                assert_eq!(dims[a] % f[a], 0, "indivisible pool at {dims:?} by {f:?}");
                dims[a] /= f[a];
                assert!(dims[a] >= 1);
            }
        }
    }

    #[test]
    fn mlp_widths_shape() {
        let cfg = MfnConfig::paper();
        assert_eq!(cfg.mlp_widths(), vec![35, 512, 256, 128, 64, 32, 4]);
    }

    #[test]
    fn json_sidecar_roundtrips() {
        let mut cfg = MfnConfig::small();
        cfg.mlp_hidden = vec![48, 24];
        cfg.gamma = 0.5;
        cfg.seed = 99;
        let back = MfnConfig::from_json(&cfg.to_json()).expect("roundtrip");
        assert_eq!(back, cfg);
    }

    #[test]
    fn unknown_sidecar_field_is_rejected() {
        // A sidecar carrying a field this build does not know about was
        // written by a diverged schema; dropping it silently could rebuild
        // a different model than the checkpoint was trained with.
        let json = MfnConfig::small().to_json().replacen('{', "{ \"dropout\": 0.1,", 1);
        let err = MfnConfig::from_json(&json).expect_err("must reject");
        assert!(err.contains("dropout"), "error should name the unknown field: {err}");
    }

    #[test]
    fn renamed_sidecar_field_is_rejected() {
        // A renamed field is both unknown (new name) and missing (old
        // name); either way the load must fail, not default the value.
        let json = MfnConfig::small().to_json().replace("latent_channels", "latent_width");
        assert!(MfnConfig::from_json(&json).is_err());
    }

    #[test]
    fn unknown_activation_is_rejected() {
        let json = MfnConfig::small().to_json().replace("softplus", "gelu");
        let err = MfnConfig::from_json(&json).expect_err("must reject");
        assert!(err.contains("gelu"));
    }
}
