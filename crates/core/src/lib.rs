//! # mfn-core
//!
//! The paper's primary contribution: **MeshfreeFlowNet**, a
//! physics-constrained deep continuous space-time super-resolution framework
//! (Jiang, Esmaeilzadeh, et al., SC 2020), implemented from scratch in Rust
//! on the `mfn-tensor`/`mfn-autodiff` stack.
//!
//! - [`unet`]: the Context Generation Network — a residual 3D U-Net with
//!   anisotropic pooling producing the Latent Context Grid (Sec. 4.1);
//! - [`decoder`]: the Continuous Decoding Network — a shared MLP queried per
//!   cell vertex and blended trilinearly (Sec. 4.2), with both a reverse-mode
//!   tape path and an exact forward-mode jet path;
//! - [`losses`]: prediction loss (Eqn. 8) and PDE equation loss (Eqn. 9) with
//!   finite-difference stencil derivatives;
//! - [`model`]: the assembled network, combined loss (Eqn. 10), and
//!   full-domain super-resolution;
//! - [`baseline`]: Baseline (I) trilinear and Baseline (II) convolutional-
//!   decoder U-Net of Table 2;
//! - [`trainer`] / [`eval`]: Adam training loops and the NMAE/R² table rows.

pub mod baseline;
pub mod checkpoint;
pub mod config;
pub mod decoder;
pub mod eval;
pub mod infer;
pub mod losses;
pub mod model;
pub mod refine;
pub mod rng;
pub mod trainer;
pub mod unet;

pub use baseline::{baseline_trilinear, hr_target_patch, BaselineII};
pub use checkpoint::{
    crc32, decode_inference_state, decode_train_state, encode_train_state, load_train_state,
    load_train_state_with_fallback, prev_path, save_train_state, CheckpointError, TrainStateMeta,
};
pub use config::{MfnConfig, TrainConfig};
pub use decoder::{plan_queries, ContinuousDecoder, QuantizedDecoder, QueryPlan, VERTICES};
pub use eval::{evaluate_pair, metric_series, table_header, EvalRow};
pub use infer::{DecodeTier, FrozenModel};
pub use losses::{
    equation_loss, equation_loss_at_points, equation_residuals_at_points, prediction_loss,
    weighted_equation_loss_at_points, weighted_l1, weighted_prediction_loss, ChannelStats,
    ConstraintSet, RbcParamsF32,
};
pub use model::{covering_origins, extract_patch, CoveringOrigins, MeshfreeFlowNet, StepLosses};
pub use refine::{refine_latent, RefineBudget, RefineReport, RefineSettings};
pub use rng::{RngState, SampleRng};
pub use trainer::{
    log_kernel_config, log_pool_stats, octree_config, BaselineTrainer, Corpus, EpochRecord, Trainer,
};
pub use unet::{ResBlock3d, UNet3d};
