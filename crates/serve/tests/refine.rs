//! Property tests for the test-time physics refinement serving mode.
//!
//! The refinement contract the serving layer advertises (DESIGN.md §14),
//! checked end to end here:
//!
//! - **k=0 is free**: a zero-step refinement decodes exactly what a plain
//!   `Query` decodes — bit-identical values over the wire;
//! - **monotone residual**: the accepted-step residual trace never
//!   increases (backtracking rejects any step that would);
//! - **determinism**: for a fixed (weights, digest, points, budget) with no
//!   wall-clock cap, refined responses are bit-reproducible — across
//!   requests and across independently built engines;
//! - **cache isolation**: refinement descends a *copy*; the shared LRU
//!   entry's bytes are untouched and plain queries after a refinement
//!   answer exactly as before it.

use mfn_core::{FrozenModel, MeshfreeFlowNet, MfnConfig, RefineBudget, RefineSettings};
use mfn_data::PatchSpec;
use mfn_serve::error::code;
use mfn_serve::{Client, Engine, EngineConfig, ServeError, Server, ServerConfig};
use mfn_telemetry::Recorder;
use std::sync::Arc;

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg.seed = 23;
    cfg
}

/// Deterministic weights: every engine in this file is the same function.
fn refine_engine() -> Arc<Engine> {
    let cfg = tiny_cfg();
    let refine = Some(RefineSettings::from_config(&cfg));
    Arc::new(Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
        EngineConfig { refine, ..EngineConfig::default() },
    ))
}

fn lcg_f32(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

fn gen_patch(idx: u64, numel: usize) -> Vec<f32> {
    let mut state = (idx + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..numel).map(|_| lcg_f32(&mut state)).collect()
}

/// Interior query points, away from the FD clamp band.
fn gen_queries(seed: u64, n: usize) -> Vec<(usize, [f32; 3])> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            let mut coord = || 0.1 + 0.8 * (lcg_f32(&mut state) + 0.5);
            (0usize, [coord(), coord(), coord()])
        })
        .collect()
}

#[test]
fn zero_step_refine_is_bit_identical_to_plain_decode_over_the_wire() {
    let engine = refine_engine();
    let numel = engine.patch_numel(1);
    let server = Server::start(
        engine.clone(),
        ServerConfig { workers: 2, ..ServerConfig::default() },
        Recorder::null(),
    )
    .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let (digest, _) = client.encode(1, &gen_patch(1, numel)).expect("encode");
    let qs = gen_queries(5, 12);
    let plain = client.query(digest, &qs).expect("plain query");
    let refined = client.refine(digest, &qs, RefineBudget::steps(0)).expect("k=0 refine");

    assert_eq!(refined.steps_run, 0);
    assert_eq!(refined.steps_accepted, 0);
    assert_eq!(refined.initial_residual.to_bits(), refined.final_residual.to_bits());
    assert_eq!(refined.channels, plain.channels);
    assert_eq!(refined.values.len(), plain.values.len());
    for (i, (r, p)) in refined.values.iter().zip(&plain.values).enumerate() {
        assert_eq!(
            r.to_bits(),
            p.to_bits(),
            "value {i}: k=0 refine ({r}) must equal plain decode ({p})"
        );
    }
    server.shutdown();
}

#[test]
fn residual_is_non_increasing_over_accepted_steps() {
    let engine = refine_engine();
    let numel = engine.patch_numel(1);
    let (digest, _) = engine.encode_patch(1, gen_patch(2, numel)).expect("encode");
    let qs = gen_queries(7, 10);
    let out = engine.refine(digest, qs, RefineBudget::steps(16)).expect("refine");
    let rep = &out.report;
    assert!(rep.steps_accepted > 0, "descent should accept at least one step");
    assert_eq!(rep.residual_trace.len() as u32, rep.steps_accepted + 1);
    assert_eq!(rep.residual_trace[0], rep.initial_residual);
    assert_eq!(*rep.residual_trace.last().unwrap(), rep.final_residual);
    for w in rep.residual_trace.windows(2) {
        assert!(w[1] <= w[0], "accepted step increased residual: {} -> {}", w[0], w[1]);
    }
}

#[test]
fn refined_responses_are_deterministic_across_requests_and_engines() {
    let qs = gen_queries(9, 8);
    let budget = RefineBudget::steps(6);

    // Same request twice against one engine.
    let engine = refine_engine();
    let numel = engine.patch_numel(1);
    let (digest, _) = engine.encode_patch(1, gen_patch(3, numel)).expect("encode");
    let a = engine.refine(digest, qs.clone(), budget).expect("refine a");
    let b = engine.refine(digest, qs.clone(), budget).expect("refine b");
    assert_eq!(a.report, b.report, "reports must be identical across requests");
    for (x, y) in a.values.iter().zip(&b.values) {
        assert_eq!(x.to_bits(), y.to_bits());
    }

    // Same request against an independently constructed engine over the
    // same deterministic weights.
    let other = refine_engine();
    let (digest2, _) = other.encode_patch(1, gen_patch(3, numel)).expect("encode other");
    assert_eq!(digest, digest2, "identical patch bytes must digest identically");
    let c = other.refine(digest2, qs, budget).expect("refine other");
    assert_eq!(a.report, c.report, "reports must be identical across engines");
    for (x, y) in a.values.iter().zip(&c.values) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn shared_cache_entry_is_bit_unchanged_after_refine() {
    let engine = refine_engine();
    let numel = engine.patch_numel(1);
    let (digest, _) = engine.encode_patch(1, gen_patch(4, numel)).expect("encode");
    let qs = gen_queries(11, 8);

    let latent_before = engine.cache().get(digest).expect("cached latent").data().to_vec();
    let (plain_before, _) = engine.query(digest, qs.clone()).expect("query before");

    let out = engine.refine(digest, qs.clone(), RefineBudget::steps(12)).expect("refine");
    assert!(out.report.steps_accepted > 0, "refinement should move the copy");

    let latent_after = engine.cache().get(digest).expect("cached latent").data().to_vec();
    assert_eq!(latent_before.len(), latent_after.len());
    for (i, (a, b)) in latent_before.iter().zip(&latent_after).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "cache latent byte-changed at element {i}");
    }

    // And the plain query path still answers from the unrefined latent.
    let (plain_after, _) = engine.query(digest, qs).expect("query after");
    for (a, b) in plain_before.iter().zip(&plain_after) {
        assert_eq!(a.to_bits(), b.to_bits(), "plain decode changed after a refinement");
    }
    // Refinement actually changed the decoded values (it wasn't a no-op).
    assert!(
        out.values.iter().zip(&plain_before).any(|(a, b)| a.to_bits() != b.to_bits()),
        "accepted refinement steps should change decoded values"
    );
}

#[test]
fn refine_against_plain_server_is_a_typed_error() {
    let cfg = tiny_cfg();
    let engine = Arc::new(Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
        EngineConfig::default(),
    ));
    let numel = engine.patch_numel(1);
    let server =
        Server::start(engine, ServerConfig::default(), Recorder::null()).expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (digest, _) = client.encode(1, &gen_patch(6, numel)).expect("encode");
    let err = client.refine(digest, &gen_queries(13, 4), RefineBudget::steps(4)).unwrap_err();
    match err {
        ServeError::Remote { code: c, .. } => assert_eq!(c, code::REFINE_DISABLED),
        other => panic!("expected typed RefineDisabled, got {other:?}"),
    }
    server.shutdown();
}
