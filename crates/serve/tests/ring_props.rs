//! Property tests for the consistent-hash ring.
//!
//! The ring is part of the fleet protocol: every process must compute the
//! same digest→shard assignment, and scale events must remap only the
//! minimum keyspace. Three layers of evidence:
//!
//! - **Exact monotonicity** (property, all keys): adding a shard never
//!   moves a key between two pre-existing shards — a moved key always
//!   lands on the new shard; removing a shard never moves a key whose
//!   owner survived. These are the defining invariants of consistent
//!   hashing and they hold exactly, not statistically.
//! - **Remap fraction** (statistical, seeded): the moved fraction on
//!   add/remove is close to the fair `1/N` — the whole point versus
//!   `digest % N`, which remaps nearly everything.
//! - **Golden assignments**: pinned digest→shard expectations. The hash is
//!   pure integer arithmetic, so these bytes must match on every platform
//!   and codegen target; a change here is a fleet-wide cache invalidation
//!   and must be deliberate.

use mfn_serve::HashRing;
use proptest::prelude::*;

fn shard_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{}:7{:03}", i + 1, i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding a shard only ever moves keys *to* the new shard.
    fn adding_a_shard_moves_keys_only_to_it(
        n in 1usize..8,
        keys in prop::collection::vec(0u64..u64::MAX, 64..256),
    ) {
        let old = HashRing::new(&shard_names(n));
        let new = HashRing::new(&shard_names(n + 1));
        for &k in &keys {
            let before = old.shard_for(k);
            let after = new.shard_for(k);
            prop_assert!(
                after == before || after == n,
                "key {k:#x} moved from shard {before} to {after}, not to the new shard {n}"
            );
        }
    }

    /// Removing a shard never moves a key whose owner survived.
    fn removing_a_shard_preserves_surviving_owners(
        n in 2usize..8,
        victim in 0usize..7,
        keys in prop::collection::vec(0u64..u64::MAX, 64..256),
    ) {
        let victim = victim % n;
        let names = shard_names(n);
        let old = HashRing::new(&names);
        let survivors: Vec<String> =
            names.iter().enumerate().filter(|(i, _)| *i != victim).map(|(_, s)| s.clone()).collect();
        let new = HashRing::new(&survivors);
        for &k in &keys {
            let before = &names[old.shard_for(k)];
            let after = &survivors[new.shard_for(k)];
            if before != &names[victim] {
                prop_assert_eq!(
                    before, after,
                    "key {:#x}: owner {} survived removal of {} but key moved to {}",
                    k, before, &names[victim], after
                );
            }
        }
    }

    /// Independently constructed rings agree on every assignment — the
    /// determinism every router/loadgen/test process relies on.
    fn independent_rings_agree(
        n in 1usize..9,
        keys in prop::collection::vec(0u64..u64::MAX, 32..128),
    ) {
        let a = HashRing::new(&shard_names(n));
        let b = HashRing::new(&shard_names(n));
        for &k in &keys {
            prop_assert_eq!(a.shard_for(k), b.shard_for(k));
        }
    }
}

#[test]
fn remap_fraction_is_near_fair_share_on_add_and_remove() {
    // Seeded key population (SplitMix64 stream), large enough for tight-ish
    // statistics but fast enough for every CI run.
    let keys: Vec<u64> = {
        let mut s = 0x5EED_u64;
        (0..20_000)
            .map(|_| {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            })
            .collect()
    };
    for n in [2usize, 4, 8] {
        let old = HashRing::new(&shard_names(n));
        let grown = HashRing::new(&shard_names(n + 1));
        let moved = keys.iter().filter(|&&k| old.shard_for(k) != grown.shard_for(k)).count() as f64;
        let frac = moved / keys.len() as f64;
        let fair = 1.0 / (n + 1) as f64;
        // 128 vnodes/shard bounds the variance; allow ±60% of fair share.
        assert!(
            frac > fair * 0.4 && frac < fair * 1.6,
            "add to {n} shards remapped {frac:.4}, fair share {fair:.4}"
        );
        // The modulo strawman remaps ~n/(n+1) — confirm we sit well below it.
        assert!(
            frac < 0.75 * (n as f64 / (n + 1) as f64),
            "remap fraction not consistent-hash-like"
        );
    }
}

#[test]
fn golden_assignments_are_pinned() {
    // These exact mappings are computed by pure integer arithmetic (FNV-1a
    // + SplitMix64 finish) and therefore must be identical on every
    // platform, OS, and codegen target. Do not update casually: changing
    // them reassigns every fleet's cached latents.
    let ring = HashRing::new(&[
        "127.0.0.1:7101".to_string(),
        "127.0.0.1:7102".to_string(),
        "127.0.0.1:7103".to_string(),
    ]);
    let golden: [(u64, usize); 8] = [
        (0x0000_0000_0000_0000, ring.shard_for(0x0000_0000_0000_0000)),
        (0x0000_0000_0000_0001, ring.shard_for(0x0000_0000_0000_0001)),
        (0xDEAD_BEEF_DEAD_BEEF, ring.shard_for(0xDEAD_BEEF_DEAD_BEEF)),
        (0xCBF2_9CE4_8422_2325, ring.shard_for(0xCBF2_9CE4_8422_2325)),
        (0x9E37_79B9_7F4A_7C15, ring.shard_for(0x9E37_79B9_7F4A_7C15)),
        (0xFFFF_FFFF_FFFF_FFFF, ring.shard_for(0xFFFF_FFFF_FFFF_FFFF)),
        (0x0123_4567_89AB_CDEF, ring.shard_for(0x0123_4567_89AB_CDEF)),
        (0x5555_5555_5555_5555, ring.shard_for(0x5555_5555_5555_5555)),
    ];
    // Snapshot taken at introduction; the self-reference above keeps the
    // table readable while this assertion pins the actual values.
    let expected: Vec<usize> = golden.iter().map(|&(_, s)| s).collect();
    let pinned: [usize; 8] = GOLDEN_EXPECTED;
    assert_eq!(expected.as_slice(), pinned.as_slice(), "digest→shard assignment drifted");
}

/// The pinned snapshot for [`golden_assignments_are_pinned`].
const GOLDEN_EXPECTED: [usize; 8] = [0, 2, 2, 0, 1, 0, 2, 2];
