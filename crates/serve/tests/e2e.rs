//! End-to-end serving: a real `MFNSTAT1` checkpoint plus its config sidecar
//! on disk → `FrozenModel::load_state` → live TCP server → concurrent
//! clients — with every served value spot-checked bit-for-bit against a
//! direct in-process `FrozenModel` decode of the same checkpoint. This is
//! the whole tentpole path in one test, minus only the binaries' argv
//! parsing.

use mfn_autodiff::{Adam, AdamConfig, Graph};
use mfn_core::{
    encode_train_state, save_train_state, FrozenModel, MeshfreeFlowNet, MfnConfig, SampleRng,
    TrainStateMeta,
};
use mfn_data::PatchSpec;
use mfn_serve::{Client, Engine, EngineConfig, Server, ServerConfig};
use mfn_telemetry::Recorder;
use mfn_tensor::Tensor;
use std::path::PathBuf;
use std::sync::Arc;

/// Per-test unique temp dir, removed on drop (panic included) so parallel
/// `cargo test` processes can't collide on a shared path.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mfn_serve_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg.seed = 23;
    cfg
}

fn lcg_f32(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

fn gen_patch(idx: u64, numel: usize) -> Vec<f32> {
    let mut state = (idx + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..numel).map(|_| lcg_f32(&mut state)).collect()
}

fn gen_queries(seed: u64, n: usize) -> Vec<(usize, [f32; 3])> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            (
                0usize,
                [lcg_f32(&mut state) + 0.5, lcg_f32(&mut state) + 0.5, lcg_f32(&mut state) + 0.5],
            )
        })
        .collect()
}

/// Writes a checkpoint whose BN running stats have genuinely drifted (a
/// fresh-init model would hide stats-restore bugs behind identical inits).
fn write_checkpoint(dir: &TempDir) -> (PathBuf, PathBuf, MfnConfig) {
    let cfg = tiny_cfg();
    let mut model = MeshfreeFlowNet::new(cfg.clone());
    for i in 0..4u64 {
        let dims = [2, cfg.in_channels, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
        let numel: usize = dims.iter().product();
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(gen_patch(100 + i, numel), &dims));
        let _ = model.unet.forward(&mut g, &model.store, x, true);
    }
    let opt = Adam::new(&model.store, AdamConfig::default());
    let meta = TrainStateMeta {
        global_step: 42,
        epoch: 1,
        batch_cursor: 0,
        rngs: vec![SampleRng::seed_from_u64(7).state()],
        samplers: Vec::new(),
    };
    let ckpt = dir.path("model.ckpt.state");
    save_train_state(&ckpt, &encode_train_state(&model, &opt, &meta)).expect("save checkpoint");
    // Sidecar naming matches the `train`/`serve` binaries: strip ".state",
    // append ".cfg.json".
    let cfg_path = dir.path("model.ckpt.cfg.json");
    cfg.save_json(&cfg_path).expect("save config sidecar");
    (ckpt, cfg_path, cfg)
}

#[test]
fn config_sidecar_roundtrips() {
    let dir = TempDir::new("cfg");
    let (_, cfg_path, cfg) = write_checkpoint(&dir);
    let loaded = MfnConfig::load_json(&cfg_path).expect("load sidecar");
    assert_eq!(loaded.to_json(), cfg.to_json(), "sidecar must round-trip the full config");
}

#[test]
fn serve_loads_checkpoint_and_matches_direct_decode() {
    let dir = TempDir::new("e2e");
    let (ckpt, cfg_path, _) = write_checkpoint(&dir);

    // The serving path: sidecar config + checkpoint → frozen engine.
    let cfg = MfnConfig::load_json(&cfg_path).expect("load sidecar");
    let frozen = FrozenModel::load_state(cfg.clone(), &ckpt).expect("load checkpoint");
    assert_eq!(frozen.trained_steps(), 42, "meta.global_step must survive the round trip");

    // Reference: an independent load of the same checkpoint, used for
    // direct in-process decodes to check the served values against.
    let reference = FrozenModel::load_state(cfg.clone(), &ckpt).expect("reference load");

    let engine = Arc::new(Engine::new(frozen, EngineConfig::default()));
    let numel = engine.patch_numel(1);
    let server = Server::start(
        engine.clone(),
        ServerConfig { workers: 3, ..ServerConfig::default() },
        Recorder::null(),
    )
    .expect("start server");
    let addr = server.local_addr().to_string();

    // Sanity-check model metadata over the wire.
    let mut probe = Client::connect(&addr).expect("connect");
    let info = probe.info().expect("info");
    assert_eq!(info.trained_steps, 42);
    assert_eq!(info.latent_channels as usize, cfg.latent_channels);
    assert_eq!((info.in_channels * info.grid[0] * info.grid[1] * info.grid[2]) as usize, numel);

    // Concurrent clients, each with its own patch and query set.
    let reference = Arc::new(reference);
    let handles: Vec<_> = (0..4u64)
        .map(|tid| {
            let addr = addr.clone();
            let reference = reference.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("worker connect");
                let patch = gen_patch(tid, numel);
                let qs = gen_queries(tid * 31 + 5, 24);
                let resp = client.encode_query(1, &patch, &qs).expect("encode_query");
                assert_eq!(resp.channels, cfg.out_channels);
                assert_eq!(resp.values.len(), qs.len() * cfg.out_channels);

                // Direct decode of the same patch through the same weights
                // must be bit-identical to what came over the wire.
                let dims = [1, cfg.in_channels, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
                let latent = reference.encode(&Tensor::from_vec(patch, &dims));
                let direct = reference.decode_values(&latent, qs.iter().copied());
                let direct = direct.data();
                assert_eq!(direct.len(), resp.values.len());
                for (i, (a, b)) in resp.values.iter().zip(direct.iter()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "served value {i} differs from direct decode ({a} vs {b})"
                    );
                }

                // Second round on the same patch must be a cache hit with
                // identical bits.
                let again = client.encode_query(1, &gen_patch(tid, numel), &qs).expect("rerun");
                assert!(again.cache_hit, "identical patch bytes must hit the cache");
                assert_eq!(again.digest, resp.digest);
                for (a, b) in again.values.iter().zip(resp.values.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    assert!(engine.cache().hits() >= 4, "each client's rerun should have hit the cache");
    server.shutdown();
}
