//! Deterministic frame-level fuzzing of the nonblocking protocol path.
//!
//! A readiness-loop server sees the wire at its ugliest: frames split at
//! arbitrary byte boundaries across poll wakeups, headers that lie about
//! their length, bytes flipped in flight. This suite drives both layers
//! with a seeded mutation corpus — every run replays the identical inputs,
//! so a failure here is a bug, never flake:
//!
//! 1. the [`FrameDecoder`] in isolation, fed mutated byte streams in
//!    randomly-sized slices: it must never panic and, once it reports a
//!    header error, must stay poisoned instead of resyncing on garbage;
//! 2. a live server, one mutated conversation per connection: every byte
//!    the server sends back must parse as a well-formed frame (typed error
//!    frames included), the connection must end in an answer or a clean
//!    close — never a hang — and the server must stay healthy for fresh
//!    connections throughout.

use mfn_core::{FrozenModel, MeshfreeFlowNet, MfnConfig, RefineSettings};
use mfn_data::PatchSpec;
use mfn_serve::error::code;
use mfn_serve::protocol::{FrameDecoder, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
use mfn_serve::{Engine, EngineConfig, Server, ServerConfig, SplitMix64, MAX_REFINE_STEPS};
use mfn_telemetry::Recorder;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg.seed = 11;
    cfg
}

fn start_server() -> (Server, String, Arc<Engine>) {
    // Refinement enabled: the fuzz corpus includes `Refine` frames, and the
    // budget-validation path only runs when the tier is on.
    let cfg = tiny_cfg();
    let refine = Some(RefineSettings::from_config(&cfg));
    let engine = Arc::new(Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
        EngineConfig { refine, ..EngineConfig::default() },
    ));
    let cfg = ServerConfig {
        workers: 2,
        request_timeout: Duration::from_millis(150),
        idle_poll: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server = Server::start(engine.clone(), cfg, Recorder::null()).expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr, engine)
}

fn frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(HEADER_LEN + payload.len());
    f.extend_from_slice(&MAGIC);
    f.push(VERSION);
    f.push(kind);
    f.extend_from_slice(&[0, 0]);
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

/// A well-formed `Refine` payload: digest first (router sharding), then the
/// budget triple, then the query block.
fn refine_payload(digest: u64, max_steps: u32, tol: f32, max_micros: u64) -> Vec<u8> {
    let mut r = Vec::new();
    r.extend_from_slice(&digest.to_le_bytes());
    r.extend_from_slice(&max_steps.to_le_bytes());
    r.extend_from_slice(&tol.to_le_bytes());
    r.extend_from_slice(&max_micros.to_le_bytes());
    r.extend_from_slice(&1u32.to_le_bytes());
    r.extend_from_slice(&0u32.to_le_bytes());
    for v in [0.25f32, 0.5, 0.75] {
        r.extend_from_slice(&v.to_le_bytes());
    }
    r
}

/// A valid multi-frame conversation to mutate: ping, info, a query with a
/// (bogus but well-formed) digest, a refine on the same digest, stats, ping.
fn base_conversation(numel: usize) -> Vec<u8> {
    let mut convo = Vec::new();
    convo.extend_from_slice(&frame(0x01, &[]));
    convo.extend_from_slice(&frame(0x02, &[]));
    let mut q = Vec::new();
    q.extend_from_slice(&0xABCD_EF01_2345_6789u64.to_le_bytes());
    q.extend_from_slice(&1u32.to_le_bytes());
    q.extend_from_slice(&0u32.to_le_bytes());
    for v in [0.25f32, 0.5, 0.75] {
        q.extend_from_slice(&v.to_le_bytes());
    }
    convo.extend_from_slice(&frame(0x04, &q));
    convo.extend_from_slice(&frame(0x07, &refine_payload(0xABCD_EF01_2345_6789, 2, 0.0, 0)));
    // An encode with a deliberately wrong float count still has a valid
    // header — it probes payload-level error handling under mutation.
    let mut e = Vec::new();
    e.extend_from_slice(&1u32.to_le_bytes());
    for i in 0..(numel.min(64)) {
        e.extend_from_slice(&(i as f32).to_le_bytes());
    }
    convo.extend_from_slice(&frame(0x03, &e));
    convo.extend_from_slice(&frame(0x06, &[]));
    convo.extend_from_slice(&frame(0x01, &[]));
    convo
}

/// Applies one seeded mutation. The mutation classes the issue names:
/// truncated headers, bit-flipped length prefixes (and anywhere else),
/// plus inserted garbage — partial-write interleaving happens at send time.
fn mutate(rng: &mut SplitMix64, bytes: &mut Vec<u8>) {
    match rng.next_below(5) {
        // Truncate anywhere, including mid-header.
        0 => {
            let keep = rng.next_below(bytes.len() as u64 + 1) as usize;
            bytes.truncate(keep);
        }
        // Bit-flip inside some frame's length prefix (offsets 8..12 of the
        // first frame — the highest-leverage lie a peer can tell).
        1 => {
            if bytes.len() >= HEADER_LEN {
                let byte = 8 + rng.next_below(4) as usize;
                bytes[byte] ^= 1 << rng.next_below(8);
            }
        }
        // Bit-flip anywhere.
        2 => {
            if !bytes.is_empty() {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.next_below(8);
            }
        }
        // Overwrite a byte with random garbage.
        3 => {
            if !bytes.is_empty() {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] = rng.next_u64() as u8;
            }
        }
        // Insert a short run of garbage at a frame-unaligned offset.
        _ => {
            let at = rng.next_below(bytes.len() as u64 + 1) as usize;
            let run: Vec<u8> = (0..rng.next_below(7) + 1).map(|_| rng.next_u64() as u8).collect();
            bytes.splice(at..at, run);
        }
    }
}

#[test]
fn decoder_survives_seeded_mutations_in_arbitrary_slices() {
    let base = base_conversation(128);
    let mut rng = SplitMix64::new(0xF0CC_5EED);
    for case in 0..2000 {
        let mut bytes = base.clone();
        for _ in 0..=rng.next_below(3) {
            mutate(&mut rng, &mut bytes);
        }
        let mut d = FrameDecoder::new();
        let mut pos = 0usize;
        let mut saw_error = false;
        while pos < bytes.len() {
            // Feed in random slices down to a single byte — the worst
            // fragmentation a poll loop can observe.
            let take = (rng.next_below(17) as usize + 1).min(bytes.len() - pos);
            d.extend(&bytes[pos..pos + take]);
            pos += take;
            loop {
                match d.next_frame() {
                    Ok(Some((_, payload))) => {
                        assert!(payload.len() as u32 <= MAX_PAYLOAD, "case {case}: oversized yield")
                    }
                    Ok(None) => break,
                    Err(_) => {
                        saw_error = true;
                        assert!(d.is_poisoned(), "case {case}: error must poison");
                        break;
                    }
                }
            }
            if saw_error {
                // Poisoned decoders must swallow everything after.
                d.extend(&bytes[pos.min(bytes.len())..]);
                assert!(matches!(d.next_frame(), Ok(None)), "case {case}: resynced after poison");
                break;
            }
        }
    }
}

/// Reads server responses until EOF/timeout, asserting each is well-formed.
/// Returns the number of frames read.
fn drain_and_check(stream: &mut TcpStream, case: u64) -> usize {
    let mut frames = 0usize;
    loop {
        let mut h = [0u8; HEADER_LEN];
        let mut got = 0usize;
        let complete = loop {
            match stream.read(&mut h[got..]) {
                Ok(0) => break false,
                Ok(n) => {
                    got += n;
                    if got == HEADER_LEN {
                        break true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::ConnectionReset =>
                {
                    break false
                }
                Err(e) => panic!("case {case}: unexpected read error {e}"),
            }
        };
        if !complete {
            assert_eq!(got, 0, "case {case}: server sent a torn header ({got} bytes)");
            return frames;
        }
        assert_eq!(&h[..4], &MAGIC, "case {case}: response without magic");
        assert_eq!(h[4], VERSION, "case {case}: response with wrong version");
        let kind = h[5];
        let known = matches!(kind, 0x81 | 0x82 | 0x83 | 0x84 | 0x86 | 0x87 | 0xFF);
        assert!(known, "case {case}: server sent unknown kind {kind:#04x}");
        let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
        assert!(len <= MAX_PAYLOAD, "case {case}: server declared oversized frame");
        let mut payload = vec![0u8; len as usize];
        if let Err(e) = stream.read_exact(&mut payload) {
            panic!("case {case}: torn payload after valid header: {e}");
        }
        if kind == 0xFF {
            assert!(payload.len() >= 2, "case {case}: error frame without a code");
            let code = u16::from_le_bytes([payload[0], payload[1]]);
            assert!((1..=16).contains(&code), "case {case}: unknown error code {code}");
        }
        frames += 1;
    }
}

#[test]
fn live_server_answers_mutated_streams_with_typed_errors_or_clean_close() {
    let (server, addr, engine) = start_server();
    let numel = engine.patch_numel(1);
    let base = base_conversation(numel);
    let mut rng = SplitMix64::new(0xBAD_F00D);

    for case in 0..120u64 {
        let mut bytes = base.clone();
        for _ in 0..=rng.next_below(3) {
            mutate(&mut rng, &mut bytes);
        }
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.set_nodelay(true).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
        // Interleave partial writes across poll wakeups: send in seeded
        // slices with occasional tiny stalls so the server's decoder sees
        // split headers and split payloads.
        let mut pos = 0usize;
        while pos < bytes.len() {
            let take = (rng.next_below(23) as usize + 1).min(bytes.len() - pos);
            if s.write_all(&bytes[pos..pos + take]).is_err() {
                // Server already rejected and closed — that is a valid
                // outcome mid-mutation; what matters is what it wrote.
                break;
            }
            pos += take;
            if rng.next_below(4) == 0 {
                std::thread::sleep(Duration::from_micros(rng.next_below(500)));
            }
        }
        let _ = s.shutdown(std::net::Shutdown::Write);
        drain_and_check(&mut s, case);

        // The fleet-killing failure mode: one poisoned connection wedging
        // the shared IO loop. Probe liveness on a fresh connection.
        if case % 10 == 0 {
            mfn_serve::Client::connect(&addr)
                .expect("fresh connect")
                .ping()
                .expect("server must stay healthy under fuzz");
        }
    }
    mfn_serve::Client::connect(&addr).unwrap().ping().expect("final health check");
    server.shutdown();
}

/// Reads exactly one response frame, or `None` on EOF/timeout.
fn read_one_frame(stream: &mut TcpStream) -> Option<(u8, Vec<u8>)> {
    let mut h = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match stream.read(&mut h[got..]) {
            Ok(0) => return None,
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    assert_eq!(&h[..4], &MAGIC, "response without magic");
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
    assert!(len <= MAX_PAYLOAD, "oversized response");
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload).ok()?;
    Some((h[5], payload))
}

fn error_code(kind: u8, payload: &[u8]) -> u16 {
    assert_eq!(kind, 0xFF, "expected an error frame, got kind {kind:#04x}");
    assert!(payload.len() >= 2, "error frame without a code");
    u16::from_le_bytes([payload[0], payload[1]])
}

/// Budget lies on the `Refine` kind: every absurd or malformed budget must
/// come back as a *typed* error — promptly, with the connection still
/// usable — and must never buy unbounded compute. Header lies, by contrast,
/// poison the connection: no later frame on it is ever processed.
#[test]
fn refine_budget_lies_get_typed_rejections_never_unbounded_compute() {
    let (server, addr, engine) = start_server();
    let numel = engine.patch_numel(1);
    let patch: Vec<f32> = (0..numel).map(|i| (i as f32 * 0.37).sin()).collect();
    let (digest, _) = engine.encode_patch(1, patch).expect("encode");

    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Absurd step counts: a u32::MAX budget answered as BAD_BUDGET in
    // bounded time is the whole point of server-side budget caps.
    for steps in [MAX_REFINE_STEPS + 1, u32::MAX] {
        let t0 = std::time::Instant::now();
        s.write_all(&frame(0x07, &refine_payload(digest, steps, 0.0, 0))).unwrap();
        let (k, p) = read_one_frame(&mut s).expect("rejection frame");
        assert_eq!(error_code(k, &p), code::BAD_BUDGET, "steps={steps}");
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "absurd budget must be rejected before any compute"
        );
    }

    // Non-finite and negative tolerances.
    for tol in [f32::NAN, f32::NEG_INFINITY, -1.0] {
        s.write_all(&frame(0x07, &refine_payload(digest, 1, tol, 0))).unwrap();
        let (k, p) = read_one_frame(&mut s).expect("rejection frame");
        assert_eq!(error_code(k, &p), code::BAD_BUDGET, "tol={tol}");
    }

    // Truncated budget fields: every prefix of the fixed header region must
    // be a payload error, not a hang or a default-filled budget.
    let full = refine_payload(digest, 1, 0.0, 0);
    for cut in [4usize, 8, 10, 12, 16, 20, 24] {
        s.write_all(&frame(0x07, &full[..cut.min(full.len())])).unwrap();
        let (k, p) = read_one_frame(&mut s).expect("rejection frame");
        assert_eq!(error_code(k, &p), code::BAD_PAYLOAD, "cut={cut}");
    }

    // A point-count lie (header claims more points than the payload holds).
    let mut lie = refine_payload(digest, 1, 0.0, 0);
    let count_at = 8 + 4 + 4 + 8;
    lie[count_at..count_at + 4].copy_from_slice(&5000u32.to_le_bytes());
    s.write_all(&frame(0x07, &lie)).unwrap();
    let (k, p) = read_one_frame(&mut s).expect("rejection frame");
    assert_eq!(error_code(k, &p), code::BAD_PAYLOAD);

    // Too many *actual* points is a budget violation, not a payload one.
    let mut big = Vec::new();
    big.extend_from_slice(&digest.to_le_bytes());
    big.extend_from_slice(&1u32.to_le_bytes());
    big.extend_from_slice(&0.0f32.to_le_bytes());
    big.extend_from_slice(&0u64.to_le_bytes());
    let n = mfn_serve::MAX_REFINE_POINTS as u32 + 1;
    big.extend_from_slice(&n.to_le_bytes());
    for _ in 0..n {
        big.extend_from_slice(&0u32.to_le_bytes());
        for v in [0.25f32, 0.5, 0.75] {
            big.extend_from_slice(&v.to_le_bytes());
        }
    }
    s.write_all(&frame(0x07, &big)).unwrap();
    let (k, p) = read_one_frame(&mut s).expect("rejection frame");
    assert_eq!(error_code(k, &p), code::BAD_BUDGET);

    // Payload errors never poison: a valid refine on the same connection —
    // delivered one byte at a time — still answers with a RefineResp.
    let valid = frame(0x07, &refine_payload(digest, 1, 0.0, 0));
    for b in &valid {
        s.write_all(std::slice::from_ref(b)).unwrap();
    }
    let (k, p) = read_one_frame(&mut s).expect("refine response");
    assert_eq!(k, 0x87, "fragmented valid refine must still decode (got {k:#04x})");
    assert_eq!(&p[..8], &digest.to_le_bytes(), "response echoes the digest");

    // Header lies DO poison: corrupt magic, then a valid ping. The server
    // may send one error frame, but the ping must never be answered.
    let mut poisoned = frame(0x07, &refine_payload(digest, 1, 0.0, 0));
    poisoned[0] ^= 0xFF;
    poisoned.extend_from_slice(&frame(0x01, &[]));
    s.write_all(&poisoned).unwrap();
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut saw_pong = false;
    while let Some((k, _)) = read_one_frame(&mut s) {
        saw_pong |= k == 0x81;
    }
    assert!(!saw_pong, "connection must stay poisoned after a header lie");

    server.shutdown();
}
