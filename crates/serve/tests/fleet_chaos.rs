//! Chaos test for the sharded fleet: kill a shard under load.
//!
//! Two shard servers (same checkpoint — mandatory for a fleet) sit behind
//! a router with a fast health probe. A client drives queries over zipf-hot
//! digests; mid-load one shard is killed. The contract under that failure:
//!
//! - the router marks the dead shard unhealthy (observable as the `Stats`
//!   aggregation shrinking to the survivor) and reroutes its keyspace;
//! - a rerouted digest that only lived in the dead shard's cache surfaces
//!   as `UnknownDigest` — the standard single-server miss — and the
//!   standard client recovery (re-encode) restores service;
//! - **every** value returned at any point, before, during, or after the
//!   kill, is bit-identical to a direct `FrozenModel` evaluation of the
//!   same patch and queries. Failover may cost availability blips; it must
//!   never cost correctness.

use mfn_core::{FrozenModel, MeshfreeFlowNet, MfnConfig, RefineBudget, RefineSettings};
use mfn_data::PatchSpec;
use mfn_serve::error::code;
use mfn_serve::{
    Client, Engine, EngineConfig, Router, RouterConfig, ServeError, Server, ServerConfig,
};
use mfn_telemetry::Recorder;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg.seed = 23;
    cfg
}

/// Same deterministic weights in every process role: both shards and the
/// in-process reference engine are the *same function*.
fn fresh_engine() -> Arc<Engine> {
    Arc::new(Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(tiny_cfg())),
        EngineConfig::default(),
    ))
}

/// Same weights, refinement tier enabled — for the mid-refine kill test.
fn fresh_refine_engine() -> Arc<Engine> {
    let cfg = tiny_cfg();
    let refine = Some(RefineSettings::from_config(&cfg));
    Arc::new(Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
        EngineConfig { refine, ..EngineConfig::default() },
    ))
}

fn start_shard_with(engine: Arc<Engine>) -> (Server, String) {
    let cfg = ServerConfig {
        workers: 2,
        request_timeout: Duration::from_millis(500),
        idle_poll: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server = Server::start(engine, cfg, Recorder::null()).expect("start shard");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn start_shard() -> (Server, String) {
    start_shard_with(fresh_engine())
}

fn lcg_f32(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

fn gen_patch(idx: usize, numel: usize) -> Vec<f32> {
    let mut state = (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..numel).map(|_| lcg_f32(&mut state)).collect()
}

fn gen_queries(idx: usize, n: usize) -> Vec<(usize, [f32; 3])> {
    let mut state = (idx as u64 + 7) * 0xA5A5_5A5A;
    (0..n)
        .map(|_| {
            (
                0usize,
                [lcg_f32(&mut state) + 0.5, lcg_f32(&mut state) + 0.5, lcg_f32(&mut state) + 0.5],
            )
        })
        .collect()
}

#[test]
fn shard_kill_under_load_reroutes_and_stays_bit_identical() {
    let (shard_a, addr_a) = start_shard();
    let (shard_b, addr_b) = start_shard();
    let router = Router::start(RouterConfig {
        shards: vec![addr_a.clone(), addr_b.clone()],
        health_interval: Duration::from_millis(50),
        fail_threshold: 2,
        request_timeout: Duration::from_secs(2),
        ..RouterConfig::default()
    })
    .expect("start router");
    let raddr = router.local_addr().to_string();

    // The oracle: a direct in-process engine over the same frozen weights.
    let reference = fresh_engine();
    let numel = reference.patch_numel(1);
    const PATCHES: usize = 6;
    const QN: usize = 8;

    let mut client = Client::connect(&raddr).expect("connect router");
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();

    // Warm phase: encode every patch through the router (each lands on its
    // ring-assigned shard) and in the reference engine.
    let mut digests = Vec::new();
    for idx in 0..PATCHES {
        let patch = gen_patch(idx, numel);
        let (digest, _) = client.encode(1, &patch).expect("warm encode via router");
        let (ref_digest, _) = reference.encode_patch(1, patch.clone()).expect("reference encode");
        assert_eq!(digest, ref_digest, "router fleet and direct engine must agree on digests");
        digests.push(digest);
    }

    // One request: query via the fleet, with the standard miss recovery,
    // then compare bitwise against the direct evaluation.
    let check = |client: &mut Client, idx: usize, round: usize| -> Result<(), ServeError> {
        let qs = gen_queries(idx * 131 + round, QN);
        let fleet = match client.query(digests[idx], &qs) {
            Err(ServeError::Remote { code: c, .. }) if c == code::UNKNOWN_DIGEST => {
                let patch = gen_patch(idx, numel);
                client.encode_query(1, &patch, &qs)?
            }
            other => other?,
        };
        let (expect, channels) =
            reference.query(digests[idx], qs.clone()).expect("reference query");
        assert_eq!(fleet.channels, channels, "channel count diverged");
        assert_eq!(fleet.values.len(), expect.len(), "value count diverged");
        for (i, (got, want)) in fleet.values.iter().zip(&expect).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "round {round}, patch {idx}, value {i}: fleet {got} != direct {want}"
            );
        }
        Ok(())
    };

    // Phase 1: healthy fleet — all digests answer, bit-identical.
    for round in 0..3 {
        for idx in 0..PATCHES {
            check(&mut client, idx, round).expect("healthy-fleet query");
        }
    }
    let healthy_before = client.stats().expect("stats before kill").len();
    assert_eq!(healthy_before, 2, "both shards should report before the kill");

    // Phase 2: kill shard A mid-load. In-flight and subsequent requests may
    // see transient transport errors while the router converges; the loop
    // keeps driving load (reconnecting like any production client) and
    // every *successful* response must still be bit-identical.
    shard_a.shutdown();
    let kill_time = Instant::now();
    let mut post_kill_successes = 0usize;
    let mut round = 100;
    while post_kill_successes < 3 * PATCHES {
        assert!(
            kill_time.elapsed() < Duration::from_secs(20),
            "fleet did not recover within 20s of the shard kill"
        );
        round += 1;
        for idx in 0..PATCHES {
            match check(&mut client, idx, round) {
                Ok(()) => post_kill_successes += 1,
                Err(_) => {
                    // Transport blip during convergence: reconnect and retry.
                    std::thread::sleep(Duration::from_millis(25));
                    client = Client::connect(&raddr).expect("reconnect after blip");
                    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
                }
            }
        }
    }

    // Phase 3: the router must have marked the dead shard unhealthy — the
    // stats aggregation is the survivor alone.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.stats() {
            Ok(stats) if stats.len() == 1 => {
                assert_eq!(stats[0].addr, addr_b, "survivor should be shard B");
                break;
            }
            _ if Instant::now() > deadline => {
                panic!("router never marked the killed shard unhealthy")
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    }

    // And the fleet keeps serving every digest, still bit-identical.
    for round in 200..202 {
        for idx in 0..PATCHES {
            check(&mut client, idx, round).expect("post-convergence query");
        }
    }

    router.shutdown();
    shard_b.shutdown();
}

/// Kill a shard under *refine* load. The premium tier inherits the fleet's
/// correctness contract unchanged: a digest rerouted to the survivor misses
/// as `UnknownDigest`, the standard re-encode recovery restores it, and the
/// refined values served after failover are bit-identical to a direct
/// single-process refinement of the same (patch, points, budget) — the
/// survivor re-encodes the same patch bytes to the same latent, and
/// refinement is deterministic from there.
#[test]
fn shard_kill_mid_refine_load_recovers_bit_identical() {
    let (shard_a, addr_a) = start_shard_with(fresh_refine_engine());
    let (shard_b, addr_b) = start_shard_with(fresh_refine_engine());
    let router = Router::start(RouterConfig {
        shards: vec![addr_a.clone(), addr_b.clone()],
        health_interval: Duration::from_millis(50),
        fail_threshold: 2,
        request_timeout: Duration::from_secs(2),
        ..RouterConfig::default()
    })
    .expect("start router");
    let raddr = router.local_addr().to_string();

    // The oracle: a direct in-process refine-enabled engine over the same
    // frozen weights.
    let reference = fresh_refine_engine();
    let numel = reference.patch_numel(1);
    const PATCHES: usize = 4;
    const QN: usize = 6;
    let budget = RefineBudget::steps(4);

    let mut client = Client::connect(&raddr).expect("connect router");
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();

    let mut digests = Vec::new();
    for idx in 0..PATCHES {
        let patch = gen_patch(idx, numel);
        let (digest, _) = client.encode(1, &patch).expect("warm encode via router");
        let (ref_digest, _) = reference.encode_patch(1, patch.clone()).expect("reference encode");
        assert_eq!(digest, ref_digest);
        digests.push(digest);
    }

    // One refine request via the fleet (standard miss recovery: re-encode,
    // retry), checked bitwise against the direct single-process refinement.
    let check = |client: &mut Client, idx: usize, round: usize| -> Result<(), ServeError> {
        let qs = gen_queries(idx * 137 + round, QN);
        let fleet = match client.refine(digests[idx], &qs, budget) {
            Err(ServeError::Remote { code: c, .. }) if c == code::UNKNOWN_DIGEST => {
                let patch = gen_patch(idx, numel);
                client.encode(1, &patch)?;
                client.refine(digests[idx], &qs, budget)?
            }
            other => other?,
        };
        let direct = reference.refine(digests[idx], qs.clone(), budget).expect("reference refine");
        assert_eq!(fleet.steps_run, direct.report.steps_run, "step counts diverged");
        assert_eq!(fleet.steps_accepted, direct.report.steps_accepted);
        assert_eq!(
            fleet.final_residual.to_bits(),
            direct.report.final_residual.to_bits(),
            "round {round}, patch {idx}: residual diverged"
        );
        assert_eq!(fleet.values.len(), direct.values.len());
        for (i, (got, want)) in fleet.values.iter().zip(&direct.values).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "round {round}, patch {idx}, value {i}: fleet refine {got} != direct {want}"
            );
        }
        Ok(())
    };

    // Phase 1: healthy fleet.
    for round in 0..2 {
        for idx in 0..PATCHES {
            check(&mut client, idx, round).expect("healthy-fleet refine");
        }
    }

    // Phase 2: kill shard A mid-refine-load; keep driving until the
    // survivor has answered every digest refined, bit-identical, twice.
    shard_a.shutdown();
    let kill_time = Instant::now();
    let mut post_kill_successes = 0usize;
    let mut round = 100;
    while post_kill_successes < 2 * PATCHES {
        assert!(
            kill_time.elapsed() < Duration::from_secs(20),
            "fleet did not recover refine service within 20s of the shard kill"
        );
        round += 1;
        for idx in 0..PATCHES {
            match check(&mut client, idx, round) {
                Ok(()) => post_kill_successes += 1,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(25));
                    client = Client::connect(&raddr).expect("reconnect after blip");
                    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
                }
            }
        }
    }

    router.shutdown();
    shard_b.shutdown();
}
