//! Pins the grad-free serving path to the training graph, bit for bit.
//!
//! The no-grad forwards in `mfn-core`/`mfn-autodiff` exist so serving can
//! skip the autodiff tape; they are only trustworthy if they produce the
//! *same bits* as the tape in eval mode. These tests are the contract: they
//! sweep seeded random weights, BN statistics drifted by training-mode
//! forwards, and seeded random inputs/queries, comparing `f32::to_bits`
//! exactly — no tolerance, because the kernels are literally shared
//! (`mfn_tensor::rowops`), not approximately reimplemented.

use mfn_autodiff::Graph;
use mfn_core::{FrozenModel, MeshfreeFlowNet, MfnConfig};
use mfn_data::PatchSpec;
use mfn_serve::{Engine, EngineConfig};
use mfn_tensor::Tensor;

fn tiny_cfg(seed: u64) -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg.seed = seed;
    cfg
}

fn lcg_f32(state: &mut u64) -> f32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

fn rand_patch(cfg: &MfnConfig, batch: usize, seed: u64) -> Tensor {
    let dims = [batch, cfg.in_channels, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let n: usize = dims.iter().product();
    Tensor::from_vec((0..n).map(|_| lcg_f32(&mut state)).collect(), &dims)
}

fn rand_queries(state: &mut u64, batch: usize, n: usize) -> Vec<(usize, [f32; 3])> {
    let mut qs: Vec<(usize, [f32; 3])> = (0..n)
        .map(|i| (i % batch, [lcg_f32(state) + 0.5, lcg_f32(state) + 0.5, lcg_f32(state) + 0.5]))
        .collect();
    // Cell corners and edges are where trilinear indexing off-by-ones hide.
    qs.push((0, [0.0, 0.0, 0.0]));
    qs.push((0, [1.0, 1.0, 1.0]));
    qs.push((batch - 1, [0.5, 0.0, 1.0]));
    qs
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: dims differ");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs ({x} vs {y})");
    }
}

/// Builds a (tape-path reference, frozen engine) pair over identical
/// weights and identical *non-trivial* BN running statistics: the reference
/// runs some training-mode forwards to drift the stats off their init,
/// then the stats are serialized into the twin before freezing.
fn twin_models(seed: u64) -> (MeshfreeFlowNet, FrozenModel) {
    let cfg = tiny_cfg(seed);
    let mut reference = MeshfreeFlowNet::new(cfg.clone());
    for i in 0..3 {
        let mut g = Graph::new();
        let x = g.constant(rand_patch(&cfg, 2, seed * 100 + i));
        let _ = reference.unet.forward(&mut g, &reference.store, x, true);
    }
    let mut twin = MeshfreeFlowNet::new(cfg);
    let mut stats = Vec::new();
    reference.write_bn_stats(&mut stats).expect("serialize BN stats");
    twin.read_bn_stats(&mut stats.as_slice()).expect("restore BN stats");
    (reference, FrozenModel::from_model(twin))
}

#[test]
fn nograd_encode_is_bit_identical_to_tape_eval() {
    for seed in 0..3u64 {
        let (mut reference, frozen) = twin_models(seed);
        let cfg = reference.cfg.clone();
        for j in 0..3 {
            let input = rand_patch(&cfg, 2, seed * 7 + j);
            let tape = reference.encode(&input);
            let eager = frozen.encode(&input);
            assert_bits_eq(&tape, &eager, "encode");
        }
    }
}

#[test]
fn nograd_decode_is_bit_identical_to_tape() {
    for seed in 0..3u64 {
        let (mut reference, frozen) = twin_models(seed);
        let cfg = reference.cfg.clone();
        let input = rand_patch(&cfg, 2, seed + 41);
        let latent_tape = reference.encode(&input);
        let latent_eager = frozen.encode(&input);
        assert_bits_eq(&latent_tape, &latent_eager, "latent");
        let mut qstate = seed + 9;
        let qs = rand_queries(&mut qstate, 2, 32);
        let tape = reference.decode_values(&latent_tape, qs.iter().copied());
        let eager = frozen.decode_values(&latent_eager, qs.iter().copied());
        assert_bits_eq(&tape, &eager, "decode");
    }
}

#[test]
fn cache_hit_is_bit_identical_to_fresh_encode() {
    let cfg = tiny_cfg(5);
    let numel = cfg.in_channels * cfg.patch.nt * cfg.patch.nz * cfg.patch.nx;
    let mut state = 77u64;
    let patch: Vec<f32> = (0..numel).map(|_| lcg_f32(&mut state)).collect();
    let mut qstate = 13u64;
    let qs = rand_queries(&mut qstate, 1, 24);

    let warm = Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(cfg.clone())),
        EngineConfig::default(),
    );
    let (digest, hit0) = warm.encode_patch(1, patch.clone()).unwrap();
    assert!(!hit0);
    let (miss_vals, _) = warm.query(digest, qs.clone()).unwrap();
    let (digest2, hit1) = warm.encode_patch(1, patch.clone()).unwrap();
    assert!(hit1, "identical bytes must hit the cache");
    assert_eq!(digest, digest2);
    let (hit_vals, _) = warm.query(digest, qs.clone()).unwrap();
    assert_eq!(
        miss_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        hit_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "cache-hit values must be bit-identical to the fresh-encode values"
    );

    // A cold engine over the same weights reproduces the same bits: the
    // cache is invisible to results, it only skips work.
    let cold =
        Engine::new(FrozenModel::from_model(MeshfreeFlowNet::new(cfg)), EngineConfig::default());
    let (_, _, cold_vals, _) = cold.encode_query(1, patch, qs).unwrap();
    assert_eq!(
        cold_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        hit_vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
}
