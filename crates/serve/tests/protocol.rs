//! Protocol robustness: a hostile or broken client must get a typed error
//! frame (when the stream still permits one) and must never take the server
//! down or wedge a worker. Each test speaks raw bytes over `TcpStream` —
//! no `Client` convenience — because the point is exactly the inputs the
//! client type would never produce.

use mfn_core::{FrozenModel, MeshfreeFlowNet, MfnConfig};
use mfn_data::PatchSpec;
use mfn_serve::error::code;
use mfn_serve::protocol::{HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};
use mfn_serve::{Client, Engine, EngineConfig, ServeError, Server, ServerConfig};
use mfn_telemetry::Recorder;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg.seed = 11;
    cfg
}

fn start_server() -> (Server, String, Arc<Engine>) {
    let engine = Arc::new(Engine::new(
        FrozenModel::from_model(MeshfreeFlowNet::new(tiny_cfg())),
        EngineConfig::default(),
    ));
    let cfg = ServerConfig {
        workers: 2,
        // Short so the stalled-frame test completes quickly.
        request_timeout: Duration::from_millis(200),
        idle_poll: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = Server::start(engine.clone(), cfg, Recorder::null()).expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr, engine)
}

fn header(magic: &[u8; 4], version: u8, kind: u8, len: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(magic);
    h.push(version);
    h.push(kind);
    h.extend_from_slice(&[0, 0]);
    h.extend_from_slice(&len.to_le_bytes());
    h
}

/// Reads one frame off the raw socket, returning `(kind, payload)`.
fn read_raw_frame(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut h = [0u8; HEADER_LEN];
    stream.read_exact(&mut h).expect("read header");
    assert_eq!(&h[..4], &MAGIC[..], "server frames always carry the magic");
    assert_eq!(h[4], VERSION);
    let kind = h[5];
    let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("read payload");
    (kind, payload)
}

fn expect_error_frame(stream: &mut TcpStream, want_code: u16, what: &str) {
    let (kind, payload) = read_raw_frame(stream);
    assert_eq!(kind, 0xFF, "{what}: expected an error frame, got kind {kind:#x}");
    assert!(payload.len() >= 2, "{what}: error payload too short");
    let got = u16::from_le_bytes([payload[0], payload[1]]);
    assert_eq!(got, want_code, "{what}: wrong error code");
    let msg = String::from_utf8_lossy(&payload[2..]);
    assert!(!msg.is_empty(), "{what}: error message should not be empty");
}

fn connect_raw(addr: &str) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

#[test]
fn bad_magic_gets_typed_error_then_close() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    s.write_all(&header(b"NOPE", VERSION, 0x01, 0)).unwrap();
    expect_error_frame(&mut s, code::BAD_MAGIC, "bad magic");
    // Header-level error: the server closes after replying.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap(), 0, "connection should be closed");
    // And the server is still healthy for fresh connections.
    Client::connect(&addr).unwrap().ping().expect("ping after bad magic");
    server.shutdown();
}

#[test]
fn bad_version_gets_typed_error() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    s.write_all(&header(&MAGIC, 9, 0x01, 0)).unwrap();
    expect_error_frame(&mut s, code::BAD_VERSION, "bad version");
    server.shutdown();
}

#[test]
fn oversized_length_prefix_rejected_before_allocation() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    // u32::MAX dwarfs MAX_PAYLOAD; a naive server would try to allocate 4 GiB.
    const { assert!(u32::MAX > MAX_PAYLOAD) };
    s.write_all(&header(&MAGIC, VERSION, 0x01, u32::MAX)).unwrap();
    expect_error_frame(&mut s, code::OVERSIZED, "oversized");
    server.shutdown();
}

#[test]
fn unknown_kind_keeps_connection_alive() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    s.write_all(&header(&MAGIC, VERSION, 0x42, 0)).unwrap();
    expect_error_frame(&mut s, code::UNKNOWN_KIND, "unknown kind");
    // Payload-level error: same connection must still answer a valid ping.
    s.write_all(&header(&MAGIC, VERSION, 0x01, 0)).unwrap();
    let (kind, payload) = read_raw_frame(&mut s);
    assert_eq!(kind, 0x81, "ping response on the same connection");
    assert!(payload.is_empty());
    server.shutdown();
}

#[test]
fn truncated_frame_stall_times_out_with_typed_error() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    // Promise 100 payload bytes, send 10, then stall. The server's
    // request_timeout (200ms here) must fire and produce a typed error.
    s.write_all(&header(&MAGIC, VERSION, 0x04, 100)).unwrap();
    s.write_all(&[0u8; 10]).unwrap();
    let (kind, payload) = read_raw_frame(&mut s);
    assert_eq!(kind, 0xFF, "stalled frame should get an error frame");
    let got = u16::from_le_bytes([payload[0], payload[1]]);
    assert!(
        got == code::TIMEOUT || got == code::TRUNCATED,
        "stall should read as timeout/truncated, got code {got}"
    );
    server.shutdown();
}

#[test]
fn mid_request_disconnect_leaves_server_healthy() {
    let (server, addr, _) = start_server();
    {
        let mut s = connect_raw(&addr);
        s.write_all(&header(&MAGIC, VERSION, 0x03, 4096)).unwrap();
        s.write_all(&[1u8; 64]).unwrap();
        // Drop: RST/FIN mid-payload.
    }
    // Worker must recover; new connections keep working.
    let mut client = Client::connect(&addr).expect("connect after disconnect");
    client.ping().expect("ping after mid-request disconnect");
    server.shutdown();
}

#[test]
fn malformed_payload_is_typed_not_fatal() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    // Query frame whose payload is too short to even hold the digest.
    s.write_all(&header(&MAGIC, VERSION, 0x04, 3)).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    expect_error_frame(&mut s, code::BAD_PAYLOAD, "short query payload");
    // Connection still frame-aligned: ping works.
    s.write_all(&header(&MAGIC, VERSION, 0x01, 0)).unwrap();
    let (kind, _) = read_raw_frame(&mut s);
    assert_eq!(kind, 0x81);
    server.shutdown();
}

#[test]
fn unknown_digest_is_remote_error_with_code() {
    let (server, addr, _) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    let err = client
        .query(0xDEAD_BEEF_DEAD_BEEF, &[(0, [0.5, 0.5, 0.5])])
        .expect_err("bogus digest must fail");
    assert_eq!(err.code(), code::UNKNOWN_DIGEST);
    match err {
        ServeError::Remote { code: c, .. } => assert_eq!(c, code::UNKNOWN_DIGEST),
        other => panic!("expected Remote error, got {other:?}"),
    }
    // Error was payload-level: the same client keeps working.
    client.ping().expect("ping after unknown digest");
    server.shutdown();
}

#[test]
fn wrong_sized_patch_is_typed() {
    let (server, addr, engine) = start_server();
    let mut client = Client::connect(&addr).unwrap();
    let numel = engine.patch_numel(1);
    // An off-by-one patch is caught structurally at the wire layer: the
    // payload carries more f32s than `batch` implies, so the cursor's
    // trailing-bytes check fires (BadPayload) before the engine's
    // ShapeMismatch ever could.
    let err = client.encode(1, &vec![0.0f32; numel + 1]).expect_err("wrong numel");
    assert_eq!(err.code(), code::BAD_PAYLOAD);
    client.ping().expect("connection survives shape mismatch");
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_request() {
    let (server, addr, engine) = start_server();
    let numel = engine.patch_numel(1);
    let patch: Vec<f32> = (0..numel).map(|i| (i as f32).sin()).collect();

    let addr2 = addr.clone();
    let handle = std::thread::spawn(move || {
        let mut client = Client::connect(&addr2).unwrap();
        client.encode_query(1, &patch, &[(0, [0.2, 0.4, 0.6])])
    });
    // Give the request time to be in flight, then shut down. The drain
    // contract: the in-flight request completes with a real response.
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    let result = handle.join().expect("client thread");
    // Either the request was already served (normal) or it raced shutdown
    // to the frame boundary and was refused with a typed ShuttingDown —
    // never a hang, never a protocol desync.
    match result {
        Ok(resp) => {
            assert_eq!(resp.values.len(), resp.channels);
            assert!(resp.values.iter().all(|v| v.is_finite()));
        }
        Err(e) => assert_eq!(e.code(), code::SHUTTING_DOWN, "unexpected error: {e}"),
    }
}

#[test]
fn response_kind_from_client_is_rejected() {
    let (server, addr, _) = start_server();
    let mut s = connect_raw(&addr);
    // 0x81 is Pong — a response kind; clients must not send it.
    s.write_all(&header(&MAGIC, VERSION, 0x81, 0)).unwrap();
    expect_error_frame(&mut s, code::UNKNOWN_KIND, "response kind as request");
    server.shutdown();
}
