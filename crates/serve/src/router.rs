//! Fleet router: digest-affine request forwarding with health checking.
//!
//! The router is the thin tier in front of N shard servers. Its one job is
//! to preserve the encode-once economics *fleet-wide*: a patch digest maps
//! to exactly one shard (via the [`crate::ring::HashRing`]), so every
//! `Encode`, `Query`, and `EncodeQuery` touching the same patch lands on
//! the same latent cache no matter which client sent it. The router never
//! parses floats — `Query` carries its digest in the first 8 payload bytes,
//! and `Encode`/`EncodeQuery` digests are computed straight over the raw
//! little-endian payload bytes ([`crate::cache::patch_digest_bytes`]),
//! bit-identical to what the shard itself computes.
//!
//! Health is judged two ways, both feeding the same consecutive-failure
//! counter (the `mfn-dist` fault-detector idiom): a background prober pings
//! every shard on a fixed cadence, and any forwarding I/O failure counts as
//! an in-band probe failure. A shard at the failure threshold is marked
//! unhealthy; its keyspace arc spills to ring successors
//! ([`crate::ring::HashRing::route`]) while every healthy shard keeps its
//! own keys — and with them its cache. A rerouted `Query` whose latent only
//! lived on the dead shard surfaces as `UnknownDigest`, the same error a
//! single server gives after eviction, so clients need no fleet-specific
//! recovery: re-encode and continue. When no shard is healthy the router
//! answers [`ServeError::NoHealthyShard`] and keeps the connection.
//!
//! Forwarding is intentionally blocking and thread-per-connection: the
//! router holds a few dozen long-lived client connections (load generators,
//! notebooks), each with its own pooled shard connections, and relays one
//! frame at a time. The thousands-of-connections problem lives in the
//! shards' readiness loops, not here.

use crate::cache::patch_digest_bytes;
use crate::error::ServeError;
use crate::protocol::{
    encode_stats, read_frame, write_error, write_frame, Kind, ModelInfo, ShardStat,
};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::Client;
use mfn_core::DecodeTier;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port 0 picks a free one).
    pub addr: String,
    /// Shard addresses; their order defines ring shard indices.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Background health-probe cadence.
    pub health_interval: Duration,
    /// Consecutive probe/forward failures before a shard is marked down.
    pub fail_threshold: u32,
    /// I/O deadline for shard forwards and health probes.
    pub request_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            vnodes: DEFAULT_VNODES,
            health_interval: Duration::from_millis(200),
            fail_threshold: 2,
            request_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-shard health state: a consecutive-failure counter feeding a flag.
struct Health {
    healthy: Vec<AtomicBool>,
    fails: Vec<AtomicU32>,
    threshold: u32,
}

impl Health {
    fn new(n: usize, threshold: u32) -> Self {
        Health {
            healthy: (0..n).map(|_| AtomicBool::new(true)).collect(),
            fails: (0..n).map(|_| AtomicU32::new(0)).collect(),
            threshold: threshold.max(1),
        }
    }

    fn note_ok(&self, i: usize) {
        self.fails[i].store(0, Ordering::Relaxed);
        self.healthy[i].store(true, Ordering::Relaxed);
    }

    fn note_fail(&self, i: usize) {
        let n = self.fails[i].fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.threshold {
            self.healthy[i].store(false, Ordering::Relaxed);
        }
    }

    fn is_healthy(&self, i: usize) -> bool {
        self.healthy[i].load(Ordering::Relaxed)
    }

    fn mask(&self) -> Vec<bool> {
        self.healthy.iter().map(|h| h.load(Ordering::Relaxed)).collect()
    }
}

/// Sentinel for a shard whose decode tier the prober has not learned yet.
const TIER_UNKNOWN: u8 = u8::MAX;

/// Fleet decode-tier bookkeeping. Every shard is meant to serve the same
/// checkpoint at the same precision tier; a mixed fleet silently hands
/// clients different error contracts depending on which shard their digest
/// lands on. The prober learns each shard's advertised tier from `Info` and
/// the fleet's first disagreement is reported exactly once.
struct TierWatch {
    tiers: Vec<AtomicU8>,
    warned: AtomicBool,
}

fn tier_name(t: u8) -> &'static str {
    DecodeTier::from_u8(t).map_or("unknown", |d| d.name())
}

impl TierWatch {
    fn new(n: usize) -> Self {
        TierWatch {
            tiers: (0..n).map(|_| AtomicU8::new(TIER_UNKNOWN)).collect(),
            warned: AtomicBool::new(false),
        }
    }

    fn is_known(&self, i: usize) -> bool {
        self.tiers[i].load(Ordering::Relaxed) != TIER_UNKNOWN
    }

    /// Records shard `i`'s advertised tier. Returns the mismatch warning
    /// the first time two known shards disagree, `None` otherwise; the
    /// caller decides where it goes (the prober logs it to stderr).
    fn note(&self, i: usize, tier: u8) -> Option<String> {
        self.tiers[i].store(tier, Ordering::Relaxed);
        let clash = self.tiers.iter().enumerate().find_map(|(j, t)| {
            let t = t.load(Ordering::Relaxed);
            (t != TIER_UNKNOWN && t != tier).then_some((j, t))
        })?;
        if self.warned.swap(true, Ordering::Relaxed) {
            return None;
        }
        Some(format!(
            "decode-tier mismatch in fleet: shard {i} serves {} but shard {} serves {} — \
             clients get different precision contracts depending on digest placement",
            tier_name(tier),
            clash.0,
            tier_name(clash.1),
        ))
    }
}

struct Ctx {
    cfg: RouterConfig,
    ring: HashRing,
    health: Health,
    tiers: TierWatch,
    /// Model metadata, fetched once from the first responsive shard. All
    /// shards serve the same checkpoint, so any shard's answer is *the*
    /// answer; the patch dims inside it are what digest extraction needs.
    info: Mutex<Option<ModelInfo>>,
}

impl Ctx {
    /// Cached [`ModelInfo`], fetching from a healthy shard on first use.
    fn model_info(&self) -> Result<ModelInfo, ServeError> {
        let mut slot = self.info.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(info) = *slot {
            return Ok(info);
        }
        for (i, addr) in self.cfg.shards.iter().enumerate() {
            if !self.health.is_healthy(i) {
                continue;
            }
            match probe_client(addr, self.cfg.request_timeout).and_then(|mut c| c.info()) {
                Ok(info) => {
                    self.health.note_ok(i);
                    if let Some(warning) = self.tiers.note(i, info.decode_tier) {
                        eprintln!("router: {warning}");
                    }
                    *slot = Some(info);
                    return Ok(info);
                }
                Err(_) => self.health.note_fail(i),
            }
        }
        Err(ServeError::NoHealthyShard)
    }
}

fn probe_client(addr: &str, timeout: Duration) -> Result<Client, ServeError> {
    let c = Client::connect(addr).map_err(|e| ServeError::from_io(&e))?;
    c.set_timeout(Some(timeout)).map_err(|e| ServeError::from_io(&e))?;
    Ok(c)
}

/// A running router; dropping or calling [`Router::shutdown`] stops it.
pub struct Router {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Router {
    /// Binds, spawns the accept and health-prober threads, and returns.
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        assert!(!cfg.shards.is_empty(), "router needs at least one shard");
        let listener = TcpListener::bind(resolve(&cfg.addr)?)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let ring = HashRing::with_vnodes(&cfg.shards, cfg.vnodes);
        let health = Health::new(cfg.shards.len(), cfg.fail_threshold);
        let tiers = TierWatch::new(cfg.shards.len());
        let ctx = Arc::new(Ctx { cfg, ring, health, tiers, info: Mutex::new(None) });
        let mut threads = Vec::new();

        {
            let ctx = ctx.clone();
            let shutdown = shutdown.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("router-health".into())
                    .spawn(move || health_loop(ctx, shutdown))?,
            );
        }
        {
            let ctx = ctx.clone();
            let shutdown = shutdown.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("router-accept".into())
                    .spawn(move || accept_loop(listener, ctx, shutdown))?,
            );
        }
        Ok(Router { local_addr, shutdown, threads })
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting and joins the router threads. Connection handler
    /// threads notice the flag at their next read-poll and exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("unresolvable {addr}"))
    })
}

/// Background prober: pings every shard each interval; successes and
/// failures feed the same counters the forwarding path uses, so a shard
/// that died quietly (no traffic hitting it) is still detected, and a
/// shard that recovered is brought back without operator action.
fn health_loop(ctx: Arc<Ctx>, shutdown: Arc<AtomicBool>) {
    let probe_timeout = ctx.cfg.request_timeout.min(Duration::from_millis(500));
    while !shutdown.load(Ordering::SeqCst) {
        for (i, addr) in ctx.cfg.shards.iter().enumerate() {
            match probe_client(addr, probe_timeout) {
                Ok(mut c) => match c.ping() {
                    Ok(()) => {
                        ctx.health.note_ok(i);
                        // Learn the shard's decode tier on its first good
                        // probe (and re-learn after it was marked unknown),
                        // so a mixed fleet is flagged even with no traffic.
                        if !ctx.tiers.is_known(i) {
                            if let Ok(info) = c.info() {
                                if let Some(warning) = ctx.tiers.note(i, info.decode_tier) {
                                    eprintln!("router: {warning}");
                                }
                            }
                        }
                    }
                    Err(_) => ctx.health.note_fail(i),
                },
                Err(_) => ctx.health.note_fail(i),
            }
        }
        // Sleep in small slices so shutdown stays prompt.
        let mut left = ctx.cfg.health_interval;
        while !shutdown.load(Ordering::SeqCst) && left > Duration::ZERO {
            let step = left.min(Duration::from_millis(25));
            std::thread::sleep(step);
            left = left.saturating_sub(step);
        }
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let ctx = ctx.clone();
                let shutdown = shutdown.clone();
                // Handlers are detached; they poll the shutdown flag.
                let _ = std::thread::Builder::new()
                    .name("router-conn".into())
                    .spawn(move || handle_conn(stream, ctx, shutdown));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Per-connection forwarding loop. Mirrors shard error discipline: header
/// violations answer a typed error then close; payload-level problems keep
/// the connection. Idle waits poll with a short read timeout so shutdown is
/// never blocked on a silent client.
fn handle_conn(mut stream: TcpStream, ctx: Arc<Ctx>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(ctx.cfg.request_timeout));
    // Pooled connections to shards, opened on first forward, dropped on
    // first I/O error. One pool per client connection keeps the router
    // lock-free on the data path.
    let mut pool: Vec<Option<TcpStream>> = ctx.cfg.shards.iter().map(|_| None).collect();
    let mut peek = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = write_error(&mut stream, &ServeError::ShuttingDown);
            return;
        }
        // Wait for the first byte with a short timeout (keeps the shutdown
        // poll alive), then read the frame with the full request deadline.
        match stream.peek(&mut peek) {
            Ok(0) => return, // clean close
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
        let _ = stream.set_read_timeout(Some(ctx.cfg.request_timeout));
        let res = read_frame(&mut stream);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        match res {
            Ok(None) => return,
            Ok(Some((kind, payload))) => {
                if !dispatch(&mut stream, &ctx, &mut pool, kind, &payload) {
                    return;
                }
            }
            Err(err) => {
                // A stalled or garbled frame desyncs the stream: answer
                // the typed error, then close.
                let _ = write_error(&mut stream, &err);
                return;
            }
        }
    }
}

/// Routes one frame. Returns false when the connection should close.
fn dispatch(
    stream: &mut TcpStream,
    ctx: &Ctx,
    pool: &mut [Option<TcpStream>],
    kind: u8,
    payload: &[u8],
) -> bool {
    let reply = |stream: &mut TcpStream, r: Result<(Kind, Vec<u8>), ServeError>| -> bool {
        match r {
            Ok((k, p)) => write_frame(stream, k, &p).is_ok(),
            Err(e) => write_error(stream, &e).is_ok(),
        }
    };
    match Kind::from_u8(kind) {
        Some(Kind::Ping) => reply(stream, Ok((Kind::Pong, Vec::new()))),
        Some(Kind::Info) => {
            let r = ctx.model_info().map(|info| (Kind::InfoResp, info.encode()));
            reply(stream, r)
        }
        Some(Kind::Stats) => reply(stream, gather_stats(ctx)),
        Some(k @ (Kind::Encode | Kind::Query | Kind::EncodeQuery | Kind::Refine)) => {
            let digest = extract_digest(ctx, k, payload);
            reply(stream, forward(ctx, pool, k, payload, digest))
        }
        // Response kinds and unknown bytes: same answer a shard gives, and
        // the connection stays usable.
        Some(_) | None => reply(stream, Err(ServeError::UnknownKind { kind })),
    }
}

/// The ring key for a request frame, from payload bytes alone.
///
/// `Query` and `Refine` carry the digest verbatim in their first 8 bytes
/// (the `Refine` payload leads with the digest for exactly this reason —
/// refinements shard to the same cache as the queries they upgrade). For
/// `Encode`
/// and `EncodeQuery` the digest is recomputed exactly as the shard will:
/// FNV-1a over the patch dims `[batch, C, nt, nz, nx]` then the raw LE f32
/// bytes (`EncodeQuery` trailing query bytes are not part of the patch).
/// Malformed payloads get `None` and are routed to the first healthy shard,
/// whose decoder produces the authoritative typed error — the router never
/// duplicates payload validation.
fn extract_digest(ctx: &Ctx, kind: Kind, payload: &[u8]) -> Option<u64> {
    match kind {
        Kind::Query | Kind::Refine => {
            let b = payload.get(0..8)?;
            Some(u64::from_le_bytes(b.try_into().ok()?))
        }
        Kind::Encode | Kind::EncodeQuery => {
            let info = ctx.model_info().ok()?;
            let batch = u32::from_le_bytes(payload.get(0..4)?.try_into().ok()?) as usize;
            let dims = [
                batch,
                info.in_channels as usize,
                info.grid[0] as usize,
                info.grid[1] as usize,
                info.grid[2] as usize,
            ];
            let numel = dims.iter().try_fold(1usize, |a, &d| a.checked_mul(d))?;
            let data = payload.get(4..4 + numel.checked_mul(4)?)?;
            Some(patch_digest_bytes(&dims, data))
        }
        _ => None,
    }
}

/// Forwards a frame to the digest's shard, walking the ring past shards
/// that fail mid-forward. Every transport failure feeds the shared health
/// counters, so the in-band path detects a killed shard as fast as the
/// prober does. A typed error frame *from* a shard is a successful forward
/// and is relayed verbatim — the shard's verdict is the answer.
fn forward(
    ctx: &Ctx,
    pool: &mut [Option<TcpStream>],
    kind: Kind,
    payload: &[u8],
    digest: Option<u64>,
) -> Result<(Kind, Vec<u8>), ServeError> {
    let mut tried: Vec<bool> = vec![false; pool.len()];
    loop {
        let mut mask = ctx.health.mask();
        for (m, t) in mask.iter_mut().zip(&tried) {
            *m = *m && !*t;
        }
        let shard = match digest {
            Some(d) => ctx.ring.route(d, &mask).ok_or(ServeError::NoHealthyShard)?,
            // No digest ⇒ the payload is malformed; any healthy shard can
            // pronounce the typed error.
            None => mask.iter().position(|&m| m).ok_or(ServeError::NoHealthyShard)?,
        };
        match forward_once(ctx, &mut pool[shard], shard, kind, payload) {
            Ok(resp) => {
                ctx.health.note_ok(shard);
                return Ok(resp);
            }
            Err(_) => {
                pool[shard] = None;
                tried[shard] = true;
                ctx.health.note_fail(shard);
            }
        }
    }
}

/// One write-request/read-response exchange with a shard over the pooled
/// (or freshly opened) connection. Any I/O error is returned for the retry
/// loop; a decoded frame — including an error frame — is a success.
fn forward_once(
    ctx: &Ctx,
    slot: &mut Option<TcpStream>,
    shard: usize,
    kind: Kind,
    payload: &[u8],
) -> std::io::Result<(Kind, Vec<u8>)> {
    if slot.is_none() {
        let s = TcpStream::connect(resolve(&ctx.cfg.shards[shard])?)?;
        s.set_nodelay(true)?;
        s.set_read_timeout(Some(ctx.cfg.request_timeout))?;
        s.set_write_timeout(Some(ctx.cfg.request_timeout))?;
        *slot = Some(s);
    }
    let s = slot.as_mut().expect("pool slot just filled");
    write_frame(s, kind, payload)?;
    let (k, resp) = read_frame(s)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "shard closed mid-exchange")
        })?;
    let kind = Kind::from_u8(k).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("shard sent kind {k:#04x}"))
    })?;
    Ok((kind, resp))
}

/// Aggregates `Stats` across healthy shards. A shard that fails the stats
/// probe is skipped (and its failure counted); the response length is
/// therefore also the fleet's healthy-shard count, which is what the chaos
/// test and the load generator read.
fn gather_stats(ctx: &Ctx) -> Result<(Kind, Vec<u8>), ServeError> {
    let mut all: Vec<ShardStat> = Vec::new();
    for (i, addr) in ctx.cfg.shards.iter().enumerate() {
        if !ctx.health.is_healthy(i) {
            continue;
        }
        match probe_client(addr, ctx.cfg.request_timeout).and_then(|mut c| c.stats()) {
            Ok(stats) => {
                ctx.health.note_ok(i);
                all.extend(stats);
            }
            Err(_) => ctx.health.note_fail(i),
        }
    }
    if all.is_empty() {
        return Err(ServeError::NoHealthyShard);
    }
    Ok((Kind::StatsResp, encode_stats(&all)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_watch_warns_once_on_fleet_mismatch() {
        let w = TierWatch::new(3);
        assert!(!w.is_known(0));
        // A uniform fleet never warns, however often tiers are re-noted.
        assert!(w.note(0, DecodeTier::Bf16Compute.as_u8()).is_none());
        assert!(w.is_known(0));
        assert!(w.note(1, DecodeTier::Bf16Compute.as_u8()).is_none());
        assert!(w.note(0, DecodeTier::Bf16Compute.as_u8()).is_none());
        // First disagreement names both shards and both tiers, once.
        let warning = w.note(2, DecodeTier::F32.as_u8()).expect("mismatch must warn");
        assert!(warning.contains("shard 2"), "{warning}");
        assert!(warning.contains("f32"), "{warning}");
        assert!(warning.contains("bf16-compute"), "{warning}");
        assert!(w.note(2, DecodeTier::Bf16Store.as_u8()).is_none(), "warning is one-shot");
    }

    #[test]
    fn tier_names_cover_the_wire_range() {
        assert_eq!(tier_name(0), "f32");
        assert_eq!(tier_name(1), "bf16-store");
        assert_eq!(tier_name(2), "bf16-compute");
        assert_eq!(tier_name(TIER_UNKNOWN), "unknown");
    }
}
