//! Dynamic micro-batching of point queries against a shared latent.
//!
//! The decoder MLP is a GEMM at heart: evaluating 256 query points in one
//! `decode_values` call costs barely more than evaluating 16, because the
//! matrix multiply amortizes packing and the per-call graph-free overhead.
//! When several connections query the *same* latent concurrently, answering
//! each alone wastes that slack. The batcher coalesces them.
//!
//! Design: leader–follower per latent digest. The first request to arrive
//! for a digest opens a *slot* and becomes its leader; requests landing
//! while the slot is open append their queries and become followers. The
//! leader waits up to `max_wait` (or until `max_batch` queries accumulate),
//! closes the slot, runs one decode over the combined batch, and routes each
//! follower its slice of the result over a channel. Followers block on the
//! channel — they do no decode work at all.
//!
//! Two details keep tail latency honest:
//! - **Solo hint**: when the caller knows it is the only request in flight
//!   (`solo = true`), the leader skips the wait entirely — a lone client
//!   never pays `max_wait` for followers that cannot exist.
//! - **Hard batch bound**: a follower that would push the batch past
//!   `max_batch` does not join; it flags the slot as overflowing (waking the
//!   leader immediately), waits for the slot to close, and retries as the
//!   leader of a fresh slot. Batches never exceed `max_batch` plus the
//!   leader's own query count.
//!
//! Panic safety: if the leader's decode panics, the follower channels drop,
//! every follower's `recv` fails, and each reports a typed
//! [`ServeError::Internal`] — no one deadlocks waiting on a dead leader.
//! Lock order is always slot-map before slot-state, never both held across
//! a decode.

use crate::error::ServeError;
use mfn_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A query point: `(batch index, [t, z, x] local coords)`.
pub type Query = (usize, [f32; 3]);

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Close a slot once this many queries have accumulated.
    pub max_batch: usize,
    /// Longest a leader waits for followers before decoding.
    pub max_wait: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig { max_batch: 256, max_wait: Duration::from_micros(200) }
    }
}

struct Waiter {
    tx: mpsc::Sender<Result<Vec<f32>, ServeError>>,
    offset: usize,
    len: usize,
}

struct SlotState {
    queries: Vec<Query>,
    waiters: Vec<Waiter>,
    has_leader: bool,
    closed: bool,
    overflow: bool,
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotState {
                queries: Vec::new(),
                waiters: Vec::new(),
                has_leader: false,
                closed: false,
                overflow: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Coalesces concurrent decode requests per latent digest.
pub struct Batcher {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    cfg: BatcherConfig,
    decode_calls: AtomicU64,
    batched_queries: AtomicU64,
}

impl Batcher {
    /// Creates a batcher with the given knobs.
    pub fn new(cfg: BatcherConfig) -> Self {
        Batcher {
            slots: Mutex::new(HashMap::new()),
            cfg,
            decode_calls: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
        }
    }

    /// Total `decode` invocations so far.
    pub fn decode_calls(&self) -> u64 {
        self.decode_calls.load(Ordering::Relaxed)
    }

    /// Total queries decoded so far (across all batches). The ratio
    /// `batched_queries / decode_calls` is the realized mean batch size.
    pub fn batched_queries(&self) -> u64 {
        self.batched_queries.load(Ordering::Relaxed)
    }

    fn lock_slots(&self) -> MutexGuard<'_, HashMap<u64, Arc<Slot>>> {
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submits `queries` against the latent identified by `key`. Exactly one
    /// submitter per open slot runs `decode` over the coalesced batch (a
    /// `[Q, C]` tensor); everyone gets back their own flattened `len·C`
    /// values. `solo` is a hint that no other request is in flight, letting
    /// a lone leader skip the follower wait.
    pub fn submit(
        &self,
        key: u64,
        queries: Vec<Query>,
        solo: bool,
        decode: impl FnOnce(&[Query]) -> Tensor,
    ) -> Result<Vec<f32>, ServeError> {
        assert!(!queries.is_empty(), "batcher requires at least one query");
        let my_len = queries.len();
        let mut my_queries = queries;
        loop {
            let slot =
                self.lock_slots().entry(key).or_insert_with(|| Arc::new(Slot::new())).clone();
            let mut st = slot.lock();
            if st.closed {
                // The slot finished between map lookup and state lock;
                // retire it and open a fresh one.
                drop(st);
                self.retire(key, &slot);
                continue;
            }
            if !st.has_leader {
                st.has_leader = true;
                st.queries.append(&mut my_queries);
                return self.lead(key, &slot, st, my_len, solo, decode);
            }
            // Follower path.
            if st.queries.len() + my_len > self.cfg.max_batch {
                // Joining would burst the bound: wake the leader now, wait
                // for this slot to close, then retry as a fresh leader.
                st.overflow = true;
                slot.cv.notify_all();
                while !st.closed {
                    st = slot.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                continue;
            }
            let offset = st.queries.len();
            st.queries.append(&mut my_queries);
            let (tx, rx) = mpsc::channel();
            st.waiters.push(Waiter { tx, offset, len: my_len });
            if st.queries.len() >= self.cfg.max_batch {
                slot.cv.notify_all();
            }
            drop(st);
            return match rx.recv() {
                Ok(res) => res,
                // The leader died (decode panicked) before sending: its
                // waiter channels dropped with the slot state.
                Err(mpsc::RecvError) => {
                    Err(ServeError::Internal("batch leader failed before replying".into()))
                }
            };
        }
    }

    /// Leader half of `submit`: wait for followers, close the slot, decode
    /// once, fan results out.
    fn lead(
        &self,
        key: u64,
        slot: &Arc<Slot>,
        mut st: MutexGuard<'_, SlotState>,
        my_len: usize,
        solo: bool,
        decode: impl FnOnce(&[Query]) -> Tensor,
    ) -> Result<Vec<f32>, ServeError> {
        if !solo {
            let deadline = Instant::now() + self.cfg.max_wait;
            while !st.overflow && st.queries.len() < self.cfg.max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) =
                    slot.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
        st.closed = true;
        let batch = std::mem::take(&mut st.queries);
        let waiters = std::mem::take(&mut st.waiters);
        drop(st);
        // New arrivals must open a fresh slot, and overflowed followers are
        // free to retry.
        self.retire(key, slot);
        slot.cv.notify_all();

        self.decode_calls.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let out = decode(&batch);
        let dims = out.dims();
        assert_eq!(dims.len(), 2, "decode must return [Q, C]");
        assert_eq!(dims[0], batch.len(), "decode returned wrong row count");
        let channels = dims[1];
        let data = out.data();
        for w in waiters {
            let slice = data[w.offset * channels..(w.offset + w.len) * channels].to_vec();
            // A follower that vanished (disconnected client) just drops its
            // receiver; its share of the batch is discarded.
            let _ = w.tx.send(Ok(slice));
        }
        Ok(data[..my_len * channels].to_vec())
    }

    /// Removes `slot` from the map iff it is still the registered slot for
    /// `key` (a successor may already have replaced it).
    fn retire(&self, key: u64, slot: &Arc<Slot>) {
        let mut map = self.lock_slots();
        if map.get(&key).is_some_and(|s| Arc::ptr_eq(s, slot)) {
            map.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    /// Decode stub: value of query `(b, [t, z, x])` is `b + 10t + 100z +
    /// 1000x` in each of 2 channels, so routing mistakes are visible.
    fn stub_decode(batch: &[Query]) -> Tensor {
        let mut v = Vec::with_capacity(batch.len() * 2);
        for &(b, [t, z, x]) in batch {
            let val = b as f32 + 10.0 * t + 100.0 * z + 1000.0 * x;
            v.push(val);
            v.push(-val);
        }
        Tensor::from_vec(v, &[batch.len(), 2])
    }

    fn expect(qs: &[Query]) -> Vec<f32> {
        stub_decode(qs).into_vec()
    }

    #[test]
    fn solo_submit_decodes_immediately() {
        let b = Batcher::new(BatcherConfig { max_batch: 64, max_wait: Duration::from_secs(10) });
        let qs = vec![(0usize, [0.1f32, 0.2, 0.3])];
        let t0 = Instant::now();
        let out = b.submit(1, qs.clone(), true, stub_decode).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1), "solo leader must not wait");
        assert_eq!(out, expect(&qs));
        assert_eq!(b.decode_calls(), 1);
    }

    #[test]
    fn concurrent_submits_coalesce_and_route_correctly() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 1024,
            max_wait: Duration::from_millis(200),
        }));
        let n = 8;
        let decodes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = b.clone();
                let decodes = decodes.clone();
                thread::spawn(move || {
                    let qs: Vec<Query> =
                        (0..3).map(|j| (i, [j as f32 * 0.1, 0.5, i as f32 * 0.05])).collect();
                    let out = b
                        .submit(7, qs.clone(), false, |batch| {
                            decodes.fetch_add(1, Ordering::SeqCst);
                            stub_decode(batch)
                        })
                        .unwrap();
                    assert_eq!(out, expect(&qs), "submitter {i} got someone else's slice");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let calls = decodes.load(Ordering::SeqCst);
        assert!(calls < n, "8 concurrent submits should coalesce, got {calls} decodes");
        assert_eq!(b.batched_queries(), (n * 3) as u64);
    }

    #[test]
    fn distinct_keys_never_share_a_batch() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 1024,
            max_wait: Duration::from_millis(100),
        }));
        let handles: Vec<_> = (0..4u64)
            .map(|key| {
                let b = b.clone();
                thread::spawn(move || {
                    let qs = vec![(0usize, [key as f32 * 0.1, 0.0, 0.0])];
                    let out = b
                        .submit(key, qs.clone(), false, |batch| {
                            assert_eq!(batch.len(), 1, "cross-key coalescing");
                            stub_decode(batch)
                        })
                        .unwrap();
                    assert_eq!(out, expect(&qs));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.decode_calls(), 4);
    }

    #[test]
    fn overflow_follower_retries_with_fresh_slot() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(50),
        }));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let b = b.clone();
                thread::spawn(move || {
                    let qs: Vec<Query> = (0..2).map(|j| (i, [j as f32 * 0.3, 0.0, 0.0])).collect();
                    let out = b
                        .submit(3, qs.clone(), false, |batch| {
                            assert!(batch.len() <= 2, "batch exceeded max_batch");
                            stub_decode(batch)
                        })
                        .unwrap();
                    assert_eq!(out, expect(&qs));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.decode_calls(), 3, "2-query submits with max_batch=2 cannot merge");
    }

    #[test]
    fn leader_panic_yields_typed_internal_for_followers() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(300),
        }));
        let b2 = b.clone();
        // Leader: panics inside decode after followers had time to join.
        let leader = thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.submit(9, vec![(0, [0.0, 0.0, 0.0])], false, |_batch| {
                    panic!("injected decode failure")
                })
            }));
            assert!(res.is_err(), "leader must observe its own panic");
        });
        // Give the leader time to open the slot.
        thread::sleep(Duration::from_millis(50));
        let follower = b.submit(9, vec![(1, [0.5, 0.5, 0.5])], false, stub_decode);
        leader.join().unwrap();
        match follower {
            // Joined the doomed slot: must get the typed internal error.
            Err(ServeError::Internal(_)) => {}
            // Raced past it into a fresh slot: must get correct values.
            Ok(v) => assert_eq!(v, expect(&[(1, [0.5, 0.5, 0.5])])),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
