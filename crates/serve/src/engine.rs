//! The inference engine: frozen model + latent cache + micro-batcher.
//!
//! One [`Engine`] is shared (via `Arc`) by every server worker. All methods
//! take `&self` and validate client-supplied shapes *before* touching the
//! model, mapping violations to typed [`ServeError`]s — a malformed request
//! must never reach a kernel assert.

use crate::batcher::{Batcher, BatcherConfig, Query};
use crate::cache::{patch_digest, patch_verify, LatentCache, Lookup};
use crate::error::ServeError;
use crate::metrics::ServeStats;
use crate::protocol::{ModelInfo, ShardStat};
use mfn_core::{FrozenModel, RefineBudget, RefineReport, RefineSettings};
use mfn_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server-side cap on a refinement's `max_steps` — a client budget beyond
/// this is rejected with `BadBudget`, never silently clamped (the client
/// would otherwise pay for steps it did not get).
pub const MAX_REFINE_STEPS: u32 = 256;
/// Server-side cap on query points per refinement request (each point costs
/// seven stencil decodes per gradient step).
pub const MAX_REFINE_POINTS: usize = 4096;
/// Admission cap on the summed cost (`(max_steps + 1) · points`) of
/// refinements in flight; beyond it new refinements get `Busy`, so a burst
/// of premium requests degrades into retries instead of starving the
/// grad-free fast path.
pub const MAX_INFLIGHT_REFINE_COST: u64 = 2 * (MAX_REFINE_STEPS as u64 + 1) * 4096;

/// Engine knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Latents kept in the LRU cache.
    pub cache_capacity: usize,
    /// Micro-batch size bound.
    pub max_batch: usize,
    /// Longest a batch leader waits for followers.
    pub max_wait: Duration,
    /// Serve decode queries through bf16-quantized decoder weights
    /// (f32 accumulation; bounded precision cost, half the weight traffic).
    pub bf16_decode: bool,
    /// Serve decode queries through the bf16-*compute* tier: weights *and*
    /// activations quantized, `vdpbf16ps` tile arithmetic (native on
    /// `avx512bf16` hosts, bit-identical emulation elsewhere). A looser
    /// error contract than `bf16_decode` for ~2x decode GEMM throughput;
    /// composes with it (compute wins when both are set — it subsumes the
    /// store tier's weight rounding).
    pub bf16_compute: bool,
    /// Test-time physics refinement settings; `None` (the default) answers
    /// every `Refine` request with `RefineDisabled` and keeps the engine a
    /// pure grad-free fast path.
    pub refine: Option<RefineSettings>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 64,
            max_batch: 256,
            max_wait: Duration::from_micros(200),
            bf16_decode: false,
            bf16_compute: false,
            refine: None,
        }
    }
}

/// What a refinement request produced: decoded values at the query points
/// against the refined latent, plus the descent report.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Flattened `count · channels` decoded values.
    pub values: Vec<f32>,
    /// Output channel count.
    pub channels: usize,
    /// Steps run/accepted and the residual trajectory.
    pub report: RefineReport,
}

/// A thread-safe serving engine over a [`FrozenModel`]: the grad-free
/// decode fast path, plus (when enabled) the grad-capable refinement tier.
pub struct Engine {
    model: FrozenModel,
    cache: LatentCache,
    batcher: Batcher,
    stats: ServeStats,
    refine_settings: Option<RefineSettings>,
    /// Refined-latent decodes go through their own batcher, never the
    /// digest-keyed one above: a refined latent is request-private, and a
    /// shared key would let a concurrent plain `Query` follower be answered
    /// from it — a silent wrong answer. Keys here are one-shot nonces.
    refine_batcher: Batcher,
    refine_nonce: AtomicU64,
    /// Summed `(max_steps + 1) · points` of refinements in flight.
    refine_cost: AtomicU64,
}

impl Engine {
    /// Wraps a frozen model with a cache and batcher. With
    /// `cfg.bf16_decode` the decoder weights are quantized here, once, and
    /// every decode the engine issues runs reduced-precision; with
    /// `cfg.bf16_compute` the quantized decoder additionally rounds
    /// activations and runs `vdpbf16ps` tiles (compute subsumes store when
    /// both flags are set).
    pub fn new(mut model: FrozenModel, cfg: EngineConfig) -> Self {
        if cfg.bf16_compute {
            model.quantize_decoder_compute();
        } else if cfg.bf16_decode {
            model.quantize_decoder();
        }
        Engine {
            model,
            cache: LatentCache::new(cfg.cache_capacity),
            batcher: Batcher::new(BatcherConfig {
                max_batch: cfg.max_batch,
                max_wait: cfg.max_wait,
            }),
            stats: ServeStats::new(),
            refine_settings: cfg.refine,
            refine_batcher: Batcher::new(BatcherConfig {
                max_batch: cfg.max_batch,
                max_wait: Duration::ZERO,
            }),
            refine_nonce: AtomicU64::new(0),
            refine_cost: AtomicU64::new(0),
        }
    }

    /// The underlying frozen model.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// The latent cache (hit/miss counters live here).
    pub fn cache(&self) -> &LatentCache {
        &self.cache
    }

    /// The micro-batcher (decode-call counters live here).
    pub fn batcher(&self) -> &Batcher {
        &self.batcher
    }

    /// Shared serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Wire-format model metadata.
    pub fn info(&self) -> ModelInfo {
        let cfg = self.model.cfg();
        let [nt, nz, nx] = self.model.grid_dims();
        ModelInfo {
            in_channels: cfg.in_channels as u32,
            out_channels: cfg.out_channels as u32,
            grid: [nt as u32, nz as u32, nx as u32],
            latent_channels: cfg.latent_channels as u32,
            param_count: self.model.param_count() as u64,
            trained_steps: self.model.trained_steps(),
            decode_tier: self.model.decode_tier().as_u8(),
        }
    }

    /// Snapshot of this process's serving counters in wire form, labelled
    /// with its advertised address. This is what a `Stats` frame returns
    /// and what a router aggregates per shard.
    pub fn shard_stat(&self, addr: &str) -> ShardStat {
        ShardStat {
            addr: addr.to_string(),
            requests: self.stats.requests(),
            errors: self.stats.errors(),
            inflight: self.stats.inflight(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_collisions: self.cache.collisions(),
            cache_len: self.cache.len() as u64,
            decode_calls: self.batcher.decode_calls(),
            batched_queries: self.batcher.batched_queries(),
            decode_tier: self.model.decode_tier().as_u8(),
        }
    }

    /// Flat f32 element count of a `batch`-patch encode input.
    pub fn patch_numel(&self, batch: usize) -> usize {
        let cfg = self.model.cfg();
        batch * cfg.in_channels * cfg.patch.nt * cfg.patch.nz * cfg.patch.nx
    }

    /// Encodes a stacked patch (`batch × C × nt × nz × nx`, flattened) into
    /// the cache, returning `(digest, cache_hit)`. A hit skips the U-Net
    /// entirely — that asymmetry is the entire point of this subsystem.
    pub fn encode_patch(&self, batch: usize, data: Vec<f32>) -> Result<(u64, bool), ServeError> {
        if batch == 0 {
            return Err(ServeError::ShapeMismatch("encode batch must be >= 1".into()));
        }
        let expect = self.patch_numel(batch);
        if data.len() != expect {
            return Err(ServeError::ShapeMismatch(format!(
                "encode payload holds {} f32s, batch {batch} needs {expect}",
                data.len()
            )));
        }
        let cfg = self.model.cfg();
        let dims = [batch, cfg.in_channels, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
        let digest = patch_digest(&dims, &data);
        let verify = patch_verify(&dims, &data);
        // A bare digest match is not proof the cached latent came from
        // these bytes — 64-bit digests collide. Only honour the hit when
        // the independent verification hash agrees; a mismatch means a
        // different patch owns this digest, and since the digest is the
        // wire handle for later `Query` frames, the new patch cannot be
        // cached at all — refuse loudly instead of answering from the
        // wrong latent.
        match self.cache.get_verified(digest, verify) {
            Lookup::Hit(_) => return Ok((digest, true)),
            Lookup::Collision => return Err(ServeError::DigestCollision(digest)),
            Lookup::Miss => {}
        }
        // Concurrent misses on the same patch both encode and race the
        // insert; the result is identical either way (the encode is a pure
        // function of the bytes), so we take the duplicated work over
        // holding a lock across the U-Net.
        let latent = self.model.encode(&Tensor::from_vec(data, &dims));
        self.cache.insert(digest, verify, Arc::new(latent));
        Ok((digest, false))
    }

    /// Answers point queries against a cached latent, micro-batching with
    /// any concurrent queries for the same digest. Returns the flattened
    /// `len·C` values and the channel count `C`.
    pub fn query(&self, digest: u64, queries: Vec<Query>) -> Result<(Vec<f32>, usize), ServeError> {
        let latent = self.cache.get(digest).ok_or(ServeError::UnknownDigest(digest))?;
        self.validate_queries(&queries, latent.dims()[0])?;
        self.stats.note_queries(queries.len() as u64);
        // With nothing else in flight there is no one to coalesce with;
        // don't make a lone client pay the batching wait.
        let solo = self.stats.inflight() <= 1;
        let out = self.batcher.submit(digest, queries, solo, |batch| {
            self.model.decode_values(&latent, batch.iter().copied())
        })?;
        Ok((out, self.model.cfg().out_channels))
    }

    /// Encode + query in one call (one network round trip for cold
    /// patches). Returns `(digest, cache_hit, values, channels)`.
    pub fn encode_query(
        &self,
        batch: usize,
        data: Vec<f32>,
        queries: Vec<Query>,
    ) -> Result<(u64, bool, Vec<f32>, usize), ServeError> {
        let (digest, hit) = self.encode_patch(batch, data)?;
        let (values, channels) = self.query(digest, queries)?;
        Ok((digest, hit, values, channels))
    }

    /// Whether this engine accepts `Refine` requests.
    pub fn refine_enabled(&self) -> bool {
        self.refine_settings.is_some()
    }

    /// Validates a client-supplied budget against the server's caps. Absurd
    /// budgets are *rejected*, not clamped — the typed error tells the
    /// client the cap, and no compute is spent.
    fn validate_budget(&self, budget: &RefineBudget, points: usize) -> Result<(), ServeError> {
        if budget.max_steps > MAX_REFINE_STEPS {
            return Err(ServeError::BadBudget(format!(
                "max_steps {} exceeds server cap {MAX_REFINE_STEPS}",
                budget.max_steps
            )));
        }
        if !budget.tol.is_finite() || budget.tol < 0.0 {
            return Err(ServeError::BadBudget(format!(
                "tolerance {} must be finite and non-negative",
                budget.tol
            )));
        }
        if points > MAX_REFINE_POINTS {
            return Err(ServeError::BadBudget(format!(
                "{points} refine points exceed server cap {MAX_REFINE_POINTS}"
            )));
        }
        Ok(())
    }

    /// Test-time physics refinement: clone the cached latent for `digest`,
    /// run budgeted gradient descent on the clone minimizing the PDE
    /// residual at `queries`, decode the refined latent at those points.
    ///
    /// The shared cache entry is never written — concurrent plain queries
    /// and later refinements of the same digest all start from the original
    /// encoder output (see DESIGN.md §14 for the isolation contract).
    pub fn refine(
        &self,
        digest: u64,
        queries: Vec<Query>,
        budget: RefineBudget,
    ) -> Result<RefineOutcome, ServeError> {
        let settings = self.refine_settings.ok_or(ServeError::RefineDisabled)?;
        self.validate_budget(&budget, queries.len())?;
        let latent = self.cache.get(digest).ok_or(ServeError::UnknownDigest(digest))?;
        self.validate_queries(&queries, latent.dims()[0])?;
        // Budget-aware admission: refinements are orders of magnitude more
        // expensive than plain decodes, so they are admitted against a
        // worst-case cost pool instead of the per-connection backlog.
        let cost = (budget.max_steps as u64 + 1) * queries.len() as u64;
        let prev = self.refine_cost.fetch_add(cost, Ordering::AcqRel);
        if prev + cost > MAX_INFLIGHT_REFINE_COST {
            self.refine_cost.fetch_sub(cost, Ordering::AcqRel);
            self.stats.note_busy();
            return Err(ServeError::Busy);
        }
        let _guard = RefineCostGuard { cost: &self.refine_cost, amount: cost };
        self.stats.note_queries(queries.len() as u64);

        // `refine_latent` works on a private copy; the Arc'd cache entry is
        // only ever read.
        let (refined, report) = self.model.refine_latent(&latent, &queries, &settings, &budget);
        self.stats.note_refine(report.steps_run as u64);
        // Decode through the engine's standard value path (quantized when
        // the engine is bf16) so a zero-step refinement is bit-identical to
        // a plain `query` of the same digest. Nonce keys + solo: refined
        // latents never coalesce with anything.
        let nonce = u64::MAX ^ self.refine_nonce.fetch_add(1, Ordering::Relaxed);
        let values = self.refine_batcher.submit(nonce, queries, true, |batch| {
            self.model.decode_values(&refined, batch.iter().copied())
        })?;
        Ok(RefineOutcome { values, channels: self.model.cfg().out_channels, report })
    }

    fn validate_queries(&self, queries: &[Query], latent_batch: usize) -> Result<(), ServeError> {
        if queries.is_empty() {
            return Err(ServeError::ShapeMismatch("query list is empty".into()));
        }
        for &(b, coords) in queries {
            if b >= latent_batch {
                return Err(ServeError::ShapeMismatch(format!(
                    "query batch index {b} out of range for latent batch {latent_batch}"
                )));
            }
            if coords.iter().any(|c| !c.is_finite()) {
                return Err(ServeError::ShapeMismatch(format!(
                    "non-finite query coordinate {coords:?}"
                )));
            }
        }
        Ok(())
    }
}

/// Releases a refinement's reserved cost on drop — including when the
/// model panics mid-descent (the worker's `catch_unwind` keeps the process
/// alive; this keeps the admission pool from leaking).
struct RefineCostGuard<'a> {
    cost: &'a AtomicU64,
    amount: u64,
}

impl Drop for RefineCostGuard<'_> {
    fn drop(&mut self) {
        self.cost.fetch_sub(self.amount, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_core::{MeshfreeFlowNet, MfnConfig};
    use mfn_data::PatchSpec;

    fn tiny_engine() -> Engine {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        Engine::new(
            FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
            EngineConfig { cache_capacity: 4, ..EngineConfig::default() },
        )
    }

    fn patch(engine: &Engine, seed: u64) -> Vec<f32> {
        let n = engine.patch_numel(1);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    /// An engine built with `bf16_decode` quantizes once at construction and
    /// serves answers within bf16 noise of the full-precision engine.
    #[test]
    fn bf16_decode_engine_tracks_exact_engine() {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let exact = Engine::new(
            FrozenModel::from_model(MeshfreeFlowNet::new(cfg.clone())),
            EngineConfig::default(),
        );
        let quant = Engine::new(
            FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
            EngineConfig { bf16_decode: true, ..EngineConfig::default() },
        );
        assert!(!exact.model().decoder_is_quantized());
        assert!(quant.model().decoder_is_quantized());
        let p = patch(&exact, 9);
        let (de, _) = exact.encode_patch(1, p.clone()).unwrap();
        let (dq, _) = quant.encode_patch(1, p).unwrap();
        assert_eq!(de, dq, "encode is full-precision on both engines");
        let queries = vec![(0usize, [0.3, 0.6, 0.2]), (0, [0.9, 0.1, 0.8])];
        let (ve, _) = exact.query(de, queries.clone()).unwrap();
        let (vq, _) = quant.query(dq, queries).unwrap();
        for (a, b) in ve.iter().zip(&vq) {
            assert!((a - b).abs() < 3e-2 * (1.0 + a.abs()), "bf16 serve drifted: {a} vs {b}");
        }
    }

    /// The compute tier serves answers within its (looser) budget of the
    /// exact engine, and `Info`/`Stats` advertise which tier answered —
    /// compute wins when both flags are set.
    #[test]
    fn bf16_compute_engine_tracks_exact_engine_and_reports_tier() {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let exact = Engine::new(
            FrozenModel::from_model(MeshfreeFlowNet::new(cfg.clone())),
            EngineConfig::default(),
        );
        let compute = Engine::new(
            FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
            EngineConfig { bf16_decode: true, bf16_compute: true, ..EngineConfig::default() },
        );
        assert_eq!(exact.info().decode_tier, mfn_core::DecodeTier::F32.as_u8());
        assert_eq!(compute.info().decode_tier, mfn_core::DecodeTier::Bf16Compute.as_u8());
        assert_eq!(compute.shard_stat("x").decode_tier, mfn_core::DecodeTier::Bf16Compute.as_u8());
        let p = patch(&exact, 21);
        let (de, _) = exact.encode_patch(1, p.clone()).unwrap();
        let (dq, _) = compute.encode_patch(1, p).unwrap();
        assert_eq!(de, dq, "encode is full-precision on both engines");
        let queries = vec![(0usize, [0.3, 0.6, 0.2]), (0, [0.9, 0.1, 0.8])];
        let (ve, _) = exact.query(de, queries.clone()).unwrap();
        let (vq, _) = compute.query(dq, queries).unwrap();
        for (a, b) in ve.iter().zip(&vq) {
            assert!((a - b).abs() < 6e-2 * (1.0 + a.abs()), "bf16 compute drifted: {a} vs {b}");
        }
    }

    #[test]
    fn encode_miss_then_hit() {
        let e = tiny_engine();
        let p = patch(&e, 1);
        let (d1, hit1) = e.encode_patch(1, p.clone()).unwrap();
        let (d2, hit2) = e.encode_patch(1, p).unwrap();
        assert_eq!(d1, d2);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(e.cache().len(), 1);
    }

    #[test]
    fn query_roundtrip_and_unknown_digest() {
        let e = tiny_engine();
        let (d, _) = e.encode_patch(1, patch(&e, 2)).unwrap();
        let (vals, c) = e.query(d, vec![(0, [0.5, 0.5, 0.5]), (0, [0.0, 1.0, 0.25])]).unwrap();
        assert_eq!(c, 4);
        assert_eq!(vals.len(), 2 * 4);
        assert!(vals.iter().all(|v| v.is_finite()));
        let err = e.query(d ^ 1, vec![(0, [0.5, 0.5, 0.5])]).unwrap_err();
        assert_eq!(err, ServeError::UnknownDigest(d ^ 1));
    }

    #[test]
    fn shape_violations_are_typed_not_panics() {
        let e = tiny_engine();
        assert!(matches!(e.encode_patch(0, vec![]).unwrap_err(), ServeError::ShapeMismatch(_)));
        assert!(matches!(
            e.encode_patch(1, vec![0.0; 3]).unwrap_err(),
            ServeError::ShapeMismatch(_)
        ));
        let (d, _) = e.encode_patch(1, patch(&e, 3)).unwrap();
        assert!(matches!(
            e.query(d, vec![(5, [0.5, 0.5, 0.5])]).unwrap_err(),
            ServeError::ShapeMismatch(_)
        ));
        assert!(matches!(
            e.query(d, vec![(0, [f32::NAN, 0.5, 0.5])]).unwrap_err(),
            ServeError::ShapeMismatch(_)
        ));
        assert!(matches!(e.query(d, vec![]).unwrap_err(), ServeError::ShapeMismatch(_)));
    }

    #[test]
    fn digest_collision_is_refused_not_served() {
        use crate::cache::{patch_digest, patch_verify};
        let e = tiny_engine();
        let cfg = e.model().cfg();
        let dims = [1, cfg.in_channels, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx];
        let p = patch(&e, 5);
        let digest = patch_digest(&dims, &p);
        // Crafting two real FNV-colliding patches is a 2^32-work birthday
        // search; instead plant an entry under this patch's digest that was
        // "encoded" from different bytes (its verify hash disagrees) —
        // byte-for-byte what a genuine collision leaves in the cache.
        let poisoned = Arc::new(Tensor::full(&[1], 42.0));
        e.cache().insert(digest, patch_verify(&dims, &p) ^ 0xdead_beef, poisoned);
        let err = e.encode_patch(1, p.clone()).unwrap_err();
        assert_eq!(err, ServeError::DigestCollision(digest));
        assert_eq!(e.cache().collisions(), 1);
        // The occupant is untouched: the colliding request must not evict
        // or overwrite the latent its rightful owner will query by digest.
        assert_eq!(e.cache().get(digest).unwrap().item(), 42.0);
    }

    fn tiny_refine_engine() -> Engine {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let refine = Some(mfn_core::RefineSettings::from_config(&cfg));
        Engine::new(
            FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
            EngineConfig { cache_capacity: 4, refine, ..EngineConfig::default() },
        )
    }

    #[test]
    fn refine_is_disabled_unless_configured() {
        let e = tiny_engine();
        assert!(!e.refine_enabled());
        let (d, _) = e.encode_patch(1, patch(&e, 11)).unwrap();
        let err = e.refine(d, vec![(0, [0.5, 0.5, 0.5])], RefineBudget::steps(1)).unwrap_err();
        assert_eq!(err, ServeError::RefineDisabled);
    }

    #[test]
    fn absurd_budgets_are_rejected_before_any_compute() {
        let e = tiny_refine_engine();
        let (d, _) = e.encode_patch(1, patch(&e, 12)).unwrap();
        let q = vec![(0usize, [0.5, 0.5, 0.5])];
        let over = RefineBudget { max_steps: MAX_REFINE_STEPS + 1, tol: 0.0, max_micros: 0 };
        assert!(matches!(e.refine(d, q.clone(), over).unwrap_err(), ServeError::BadBudget(_)));
        let nan_tol = RefineBudget { max_steps: 1, tol: f32::NAN, max_micros: 0 };
        assert!(matches!(e.refine(d, q.clone(), nan_tol).unwrap_err(), ServeError::BadBudget(_)));
        let many = vec![(0usize, [0.5, 0.5, 0.5]); MAX_REFINE_POINTS + 1];
        assert!(matches!(
            e.refine(d, many, RefineBudget::steps(1)).unwrap_err(),
            ServeError::BadBudget(_)
        ));
        assert_eq!(e.stats().refines(), 0, "rejected budgets must not run");
    }

    #[test]
    fn refine_reduces_residual_and_leaves_cache_untouched() {
        let e = tiny_refine_engine();
        let (d, _) = e.encode_patch(1, patch(&e, 13)).unwrap();
        let before: Vec<f32> = e.cache().get(d).unwrap().data().to_vec();
        let q: Vec<Query> =
            (0..8).map(|i| (0usize, [0.2 + 0.07 * i as f32, 0.3 + 0.05 * i as f32, 0.5])).collect();
        let out = e.refine(d, q.clone(), RefineBudget::steps(8)).unwrap();
        assert_eq!(out.values.len(), q.len() * out.channels);
        assert!(out.report.final_residual <= out.report.initial_residual);
        let after: Vec<f32> = e.cache().get(d).unwrap().data().to_vec();
        assert_eq!(before, after, "refine must never write the shared cache entry");
        // Plain queries after a refine still answer from the original latent.
        let (plain, _) = e.query(d, q.clone()).unwrap();
        if out.report.steps_accepted > 0 {
            assert_ne!(plain, out.values, "refined values should differ from plain decode");
        }
        // Zero-step refine is bit-identical to the plain decode path.
        let zero = e.refine(d, q, RefineBudget::steps(0)).unwrap();
        assert_eq!(zero.values, plain);
        assert_eq!(e.stats().refines(), 2);
    }

    /// DESIGN.md §14 cache-isolation contract, extended to the quantized
    /// tiers: a zero-step `Refine` decodes through whatever tier the engine
    /// was built with, so its values are bit-identical to a plain `Query`
    /// on the same engine — on bf16-store and bf16-compute alike.
    #[test]
    fn zero_step_refine_is_bit_identical_on_quantized_tiers() {
        for (decode, compute) in [(true, false), (true, true)] {
            let mut cfg = MfnConfig::small();
            cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
            cfg.base_channels = 4;
            cfg.latent_channels = 8;
            cfg.mlp_hidden = vec![16, 16];
            cfg.levels = 2;
            let refine = Some(mfn_core::RefineSettings::from_config(&cfg));
            let e = Engine::new(
                FrozenModel::from_model(MeshfreeFlowNet::new(cfg)),
                EngineConfig {
                    cache_capacity: 4,
                    refine,
                    bf16_decode: decode,
                    bf16_compute: compute,
                    ..EngineConfig::default()
                },
            );
            let (d, _) = e.encode_patch(1, patch(&e, 17)).unwrap();
            let q: Vec<Query> = (0..6)
                .map(|i| (0usize, [0.15 + 0.1 * i as f32, 0.4 + 0.06 * i as f32, 0.55]))
                .collect();
            let (plain, _) = e.query(d, q.clone()).unwrap();
            let zero = e.refine(d, q, RefineBudget::steps(0)).unwrap();
            assert_eq!(
                zero.values,
                plain,
                "k=0 refine must match plain query on tier {}",
                e.model.decode_tier().name()
            );
        }
    }

    #[test]
    fn refine_admission_pool_drains_after_requests() {
        let e = tiny_refine_engine();
        let (d, _) = e.encode_patch(1, patch(&e, 14)).unwrap();
        let q = vec![(0usize, [0.5, 0.5, 0.5])];
        e.refine(d, q, RefineBudget::steps(2)).unwrap();
        assert_eq!(e.refine_cost.load(Ordering::Acquire), 0, "cost reservation must be released");
    }

    #[test]
    fn encode_query_combines_both_halves() {
        let e = tiny_engine();
        let p = patch(&e, 4);
        let (d, hit, vals, c) = e.encode_query(1, p.clone(), vec![(0, [0.25, 0.75, 0.5])]).unwrap();
        assert!(!hit);
        assert_eq!(vals.len(), c);
        // Same patch again: cache hit, identical values.
        let (d2, hit2, vals2, _) = e.encode_query(1, p, vec![(0, [0.25, 0.75, 0.5])]).unwrap();
        assert_eq!(d, d2);
        assert!(hit2);
        assert_eq!(vals, vals2, "cache hit must be bit-identical to fresh encode");
    }
}
