//! Consistent-hash ring for sharding the latent cache across a fleet.
//!
//! Each shard is placed on a `u64` ring at `vnodes` pseudo-random points
//! derived from its *name* (its address string), and a patch digest is
//! served by the shard owning the first point at or after the digest's own
//! position. Two properties make this the right structure for a latent
//! cache:
//!
//! - **Stability**: adding or removing one shard remaps only the keys whose
//!   owning arc moved — in expectation `1/N` of the keyspace — so a scale
//!   event invalidates a sliver of the fleet's cached latents, not all of
//!   them. A modulo assignment (`digest % N`) would remap nearly
//!   everything.
//! - **Determinism**: point positions are pure integer arithmetic (FNV-1a
//!   over the shard name, finished with a SplitMix64 avalanche per vnode),
//!   so every process — router, load generator, test oracle — computes the
//!   identical assignment on every platform and codegen target. The ring
//!   is effectively part of the fleet protocol: encode-once only holds
//!   fleet-wide if everyone agrees who owns a digest.
//!
//! Health is layered on top, not baked in: [`HashRing::shard_for`] is the
//! pure assignment, and [`HashRing::route`] walks forward past unhealthy
//! shards, which preserves the assignment of every healthy shard while a
//! peer is down (keys of the dead shard spill to ring successors).

/// FNV-1a 64 offset basis (same constants as the patch digest).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// SplitMix64 avalanche: bijective, well-mixed, pure integer ops.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Default virtual nodes per shard. High enough that the largest arc a
/// single shard owns stays within a few percent of fair share.
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hash ring over named shards.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Ring points sorted by position: `(position, shard index)`.
    points: Vec<(u64, usize)>,
    /// Shard names, index-aligned with the point entries.
    names: Vec<String>,
}

impl HashRing {
    /// Builds a ring from shard names with [`DEFAULT_VNODES`] points each.
    pub fn new(names: &[String]) -> Self {
        Self::with_vnodes(names, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit vnode count (min 1) per shard.
    pub fn with_vnodes(names: &[String], vnodes: usize) -> Self {
        assert!(!names.is_empty(), "a ring needs at least one shard");
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            let base = fnv1a(name.as_bytes());
            for v in 0..vnodes {
                // Mix the vnode counter through an avalanche so a shard's
                // points scatter instead of clustering near its base hash.
                points.push((splitmix(base ^ (v as u64).wrapping_mul(FNV_PRIME)), idx));
            }
        }
        // Position ties (astronomically unlikely) resolve by shard index so
        // every process sorts identically.
        points.sort_unstable();
        HashRing { points, names: names.to_vec() }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the ring has no shards (never true — construction asserts).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The shard names in construction order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shard index owning `key`: the first ring point at or after the
    /// key's avalanche position, wrapping at the top.
    pub fn shard_for(&self, key: u64) -> usize {
        let pos = splitmix(key);
        let i = self.points.partition_point(|&(p, _)| p < pos);
        let (_, shard) = self.points[if i == self.points.len() { 0 } else { i }];
        shard
    }

    /// The shard index owning `key` among shards whose `healthy[idx]` is
    /// true, walking forward past unhealthy owners. `None` when every shard
    /// is down.
    pub fn route(&self, key: u64, healthy: &[bool]) -> Option<usize> {
        assert_eq!(healthy.len(), self.names.len(), "health mask length mismatch");
        if healthy.iter().all(|h| !h) {
            return None;
        }
        let pos = splitmix(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        let n = self.points.len();
        for step in 0..n {
            let (_, shard) = self.points[(start + step) % n];
            if healthy[shard] {
                return Some(shard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7100 + i)).collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let ring = HashRing::new(&names(4));
        let ring2 = HashRing::new(&names(4));
        for key in 0..1000u64 {
            let s = ring.shard_for(key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            assert!(s < 4);
            assert_eq!(s, ring2.shard_for(key.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = HashRing::new(&names(4));
        let mut counts = [0usize; 4];
        for key in 0..40_000u64 {
            counts[ring.shard_for(splitmix(key))] += 1;
        }
        for &c in &counts {
            // Fair share is 10k; 128 vnodes keeps shards within ~±35%.
            assert!((6_500..=13_500).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn route_skips_unhealthy_and_preserves_healthy_owners() {
        let ring = HashRing::new(&names(3));
        let all = [true, true, true];
        for key in 0..5_000u64 {
            let k = splitmix(key);
            let owner = ring.shard_for(k);
            assert_eq!(ring.route(k, &all), Some(owner));
            let mut down = all;
            down[owner] = false;
            let fallback = ring.route(k, &down).unwrap();
            assert_ne!(fallback, owner, "rerouted key must leave the dead shard");
            // A key whose owner is healthy must not move when another
            // shard dies.
            let other = (owner + 1) % 3;
            let mut other_down = all;
            other_down[other] = false;
            assert_eq!(ring.route(k, &other_down), Some(owner));
        }
        assert_eq!(ring.route(7, &[false, false, false]), None);
    }
}
