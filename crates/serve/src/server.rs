//! Nonblocking readiness-loop TCP server over the frame protocol.
//!
//! Architecture: one IO thread owns every socket. The listener and all
//! connections are nonblocking; each sweep of the loop drains compute
//! completions, accepts new connections, and services every live connection
//! through a per-connection state machine (incremental [`FrameDecoder`] on
//! the read side, a buffered byte queue on the write side). Requests that
//! need model work — `Encode`, `Query`, `EncodeQuery` — are handed to a
//! fixed pool of compute workers over a bounded queue; cheap requests
//! (`Ping`, `Info`, `Stats`) are answered inline. One process holds
//! thousands of connections this way: idle connections cost a buffer and a
//! slab slot, not a thread.
//!
//! Everything is std — no async runtime and no epoll binding. The loop
//! polls with an adaptive backoff: while any socket or completion makes
//! progress it spins hot; once idle it yields, then sleeps in escalating
//! steps capped at [`ServerConfig::idle_poll`] (which therefore still
//! bounds shutdown latency, exactly as in the blocking design).
//!
//! Ordering: responses on a connection must come back in request order even
//! though the compute pool finishes jobs out of order. Each decoded frame
//! takes a per-connection sequence number; completed responses park in a
//! reorder map and are flushed strictly in sequence.
//!
//! Admission control bounds memory three ways: a connection with
//! [`ServerConfig::max_inflight_per_conn`] requests in flight is simply not
//! read from (TCP backpressure, no errors); a full compute queue answers
//! `Busy` but keeps the connection; a process at
//! [`ServerConfig::max_conns`] refuses new connections with `Busy`.
//!
//! Error discipline is unchanged from the blocking server: payload-level
//! failures (`BadPayload`, `ShapeMismatch`, `UnknownDigest`, …) are
//! answered and the connection lives on; header-level failures (`BadMagic`,
//! `BadVersion`, `Oversized`, `Truncated`, `Timeout`) poison the stream —
//! the server flushes the error frame, then closes. A client that stalls
//! mid-frame gets a typed `Timeout` once [`ServerConfig::request_timeout`]
//! passes without the frame completing.
//!
//! Shutdown is a drain: accepting stops, in-flight compute finishes and its
//! responses flush, idle connections are told `ShuttingDown`, and
//! `shutdown()` joins every thread before returning.

use crate::engine::{Engine, RefineOutcome};
use crate::error::ServeError;
use crate::protocol::{self, write_error, write_frame, Cursor, FrameDecoder, Kind};
use mfn_core::RefineBudget;
use mfn_telemetry::Recorder;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (port 0 for ephemeral).
    pub addr: String,
    /// Compute worker threads (concurrent model evaluations).
    pub workers: usize,
    /// Bound of the compute job queue; when full, requests get a typed
    /// `Busy` error.
    pub backlog: usize,
    /// Deadline for a started frame to finish arriving, and for a blocked
    /// write to make progress.
    pub request_timeout: Duration,
    /// Cap on the IO loop's idle backoff sleep (bounds shutdown latency).
    pub idle_poll: Duration,
    /// Telemetry publish cadence.
    pub publish_interval: Duration,
    /// Open-connection cap; beyond it new connections are refused `Busy`.
    pub max_conns: usize,
    /// Per-connection in-flight request bound; a connection at the bound is
    /// not read from until a response completes (TCP backpressure).
    pub max_inflight_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            backlog: 64,
            request_timeout: Duration::from_secs(2),
            idle_poll: Duration::from_millis(25),
            publish_interval: Duration::from_millis(500),
            max_conns: 4096,
            max_inflight_per_conn: 32,
        }
    }
}

/// A running server; dropping or calling [`Server::shutdown`] drains it.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the IO/worker/publisher threads, and returns.
    pub fn start(
        engine: Arc<Engine>,
        cfg: ServerConfig,
        recorder: Recorder,
    ) -> std::io::Result<Server> {
        let mut cfg = cfg;
        let listener = TcpListener::bind(resolve(&cfg.addr)?)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        // Stats frames identify this shard by address; report the bound
        // one so port-0 servers are distinguishable in fleet aggregation.
        cfg.addr = local_addr.to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = std::sync::mpsc::sync_channel::<Job>(cfg.backlog.max(1));
        let (done_tx, done_rx) = std::sync::mpsc::channel::<Done>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut threads = Vec::new();

        for i in 0..cfg.workers.max(1) {
            let engine = engine.clone();
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let idle = cfg.idle_poll;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(engine, job_rx, done_tx, idle))?,
            );
        }
        drop(done_tx); // the IO loop must see Disconnected once workers exit
        {
            let engine = engine.clone();
            let shutdown = shutdown.clone();
            let cfg = cfg.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-io".into())
                    .spawn(move || io_loop(listener, engine, cfg, shutdown, job_tx, done_rx))?,
            );
        }
        {
            let engine = engine.clone();
            let shutdown = shutdown.clone();
            let interval = cfg.publish_interval;
            threads.push(
                std::thread::Builder::new()
                    .name("serve-telemetry".into())
                    .spawn(move || publish_loop(engine, recorder, shutdown, interval))?,
            );
        }
        Ok(Server { local_addr, shutdown, threads })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and joins every thread; in-flight requests finish
    /// and their responses flush, idle connections are told `ShuttingDown`.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("unresolvable {addr}"))
    })
}

/// A compute job dispatched from the IO loop to the worker pool.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    kind: u8,
    payload: Vec<u8>,
    t0: Instant,
}

/// A finished job travelling back to the IO loop.
struct Done {
    conn: usize,
    gen: u64,
    seq: u64,
    t0: Instant,
    result: Result<(Kind, Vec<u8>), ServeError>,
}

type Response = (Result<(Kind, Vec<u8>), ServeError>, Instant);

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Generation stamp distinguishing this connection from a previous
    /// occupant of the same slab slot (stale completions are dropped).
    gen: u64,
    decoder: FrameDecoder,
    /// Bytes queued for writing; `out_pos` marks how much already left.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence number the next decoded frame will take.
    next_seq: u64,
    /// Sequence number the next flushed response must have.
    flush_seq: u64,
    /// Completed responses waiting for their turn in the order.
    ready: BTreeMap<u64, Response>,
    /// Jobs dispatched to the compute pool, not yet completed.
    inflight: usize,
    /// No more reads; close once responses and output are fully flushed.
    closing: bool,
    /// Peer half-closed cleanly at a frame boundary.
    read_closed: bool,
    /// Deadline for the in-progress frame to finish arriving.
    frame_deadline: Option<Instant>,
    /// Deadline for a blocked write to make progress.
    write_deadline: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Conn {
            stream,
            gen,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            flush_seq: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            closing: false,
            read_closed: false,
            frame_deadline: None,
            write_deadline: None,
        }
    }

    /// Parks a response under its sequence number.
    fn queue(&mut self, seq: u64, resp: Response) {
        self.ready.insert(seq, resp);
    }

    /// Parks a connection-fatal error and stops further reads.
    fn queue_close(&mut self, seq: u64, err: ServeError) {
        self.queue(seq, (Err(err), Instant::now()));
        self.closing = true;
    }

    /// Moves in-order completed responses from the reorder map into the
    /// output buffer, recording stats as each is committed.
    fn flush_ready(&mut self, engine: &Engine) {
        while let Some((result, t0)) = self.ready.remove(&self.flush_seq) {
            self.flush_seq += 1;
            match result {
                Ok((kind, payload)) => {
                    write_frame(&mut self.out, kind, &payload).expect("vec write");
                    engine.stats().note_request(t0.elapsed().as_micros() as u64);
                }
                Err(e) => {
                    engine.stats().note_error();
                    write_error(&mut self.out, &e).expect("vec write");
                }
            }
        }
    }

    /// Decodes buffered frames and dispatches them, respecting the per-conn
    /// in-flight bound. Returns whether anything happened.
    fn parse_frames(
        &mut self,
        id: usize,
        engine: &Engine,
        cfg: &ServerConfig,
        job_tx: &SyncSender<Job>,
        draining: bool,
    ) -> bool {
        let mut progress = false;
        while !self.closing && self.inflight < cfg.max_inflight_per_conn {
            match self.decoder.next_frame() {
                Ok(Some((kind, payload))) => {
                    progress = true;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    if draining {
                        self.queue_close(seq, ServeError::ShuttingDown);
                    } else {
                        self.dispatch(id, seq, kind, payload, engine, cfg, job_tx);
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Header-level violation: answer, then close. The
                    // decoder is poisoned, so no further frames can arrive.
                    progress = true;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.queue_close(seq, e);
                    break;
                }
            }
        }
        self.flush_ready(engine);
        progress
    }

    /// Routes one decoded frame: cheap kinds inline, model work to the pool.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        id: usize,
        seq: u64,
        kind: u8,
        payload: Vec<u8>,
        engine: &Engine,
        cfg: &ServerConfig,
        job_tx: &SyncSender<Job>,
    ) {
        let t0 = Instant::now();
        match Kind::from_u8(kind) {
            Some(Kind::Ping) => {
                let r = Cursor::new(&payload).finish().map(|_| (Kind::Pong, Vec::new()));
                self.queue(seq, (r, t0));
            }
            Some(Kind::Info) => {
                let r = Cursor::new(&payload)
                    .finish()
                    .map(|_| (Kind::InfoResp, engine.info().encode()));
                self.queue(seq, (r, t0));
            }
            Some(Kind::Stats) => {
                let r = Cursor::new(&payload).finish().map(|_| {
                    (Kind::StatsResp, protocol::encode_stats(&[engine.shard_stat(&cfg.addr)]))
                });
                self.queue(seq, (r, t0));
            }
            Some(Kind::Encode | Kind::Query | Kind::EncodeQuery | Kind::Refine) => {
                match job_tx.try_send(Job { conn: id, gen: self.gen, seq, kind, payload, t0 }) {
                    Ok(()) => self.inflight += 1,
                    Err(TrySendError::Full(_)) => {
                        engine.stats().note_busy();
                        self.queue(seq, (Err(ServeError::Busy), t0));
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.queue_close(seq, ServeError::ShuttingDown);
                    }
                }
            }
            // Response kinds arriving as requests are protocol misuse; the
            // stream is still frame-aligned, so the connection survives.
            Some(_) | None => {
                self.queue(seq, (Err(ServeError::UnknownKind { kind }), t0));
            }
        }
    }

    /// One readiness sweep over this connection. Returns `(progress,
    /// alive)`; a dead connection is dropped by the caller.
    fn service(
        &mut self,
        id: usize,
        engine: &Engine,
        cfg: &ServerConfig,
        job_tx: &SyncSender<Job>,
        draining: bool,
        buf: &mut [u8],
    ) -> (bool, bool) {
        // Frames may have been buffered while the in-flight bound paused
        // reads; parse before reading so completions unblock them.
        let mut progress = self.parse_frames(id, engine, cfg, job_tx, draining);

        if !self.closing && !self.read_closed && !self.decoder.is_poisoned() {
            let mut reads = 0usize;
            while self.inflight < cfg.max_inflight_per_conn && reads < 4 {
                match self.stream.read(buf) {
                    Ok(0) => {
                        progress = true;
                        if self.decoder.mid_frame() {
                            let seq = self.next_seq;
                            self.next_seq += 1;
                            self.queue_close(seq, ServeError::Truncated);
                        }
                        self.read_closed = true;
                        break;
                    }
                    Ok(n) => {
                        progress = true;
                        reads += 1;
                        self.decoder.extend(&buf[..n]);
                        self.parse_frames(id, engine, cfg, job_tx, draining);
                        if self.closing || n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return (true, false),
                }
            }
        }

        // Stall timeout: a frame that started must finish within the
        // request deadline. Suppressed while the in-flight bound pauses
        // parsing — then the stall is ours, not the client's.
        if self.closing || !self.decoder.mid_frame() || self.inflight >= cfg.max_inflight_per_conn {
            self.frame_deadline = None;
        } else {
            let now = Instant::now();
            let deadline = *self.frame_deadline.get_or_insert(now + cfg.request_timeout);
            if now >= deadline {
                progress = true;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.queue_close(seq, ServeError::Timeout);
                self.flush_ready(engine);
            }
        }

        // Drain notice: an idle connection is told the server is going away.
        if draining && !self.closing && self.inflight == 0 && self.ready.is_empty() {
            write_error(&mut self.out, &ServeError::ShuttingDown).expect("vec write");
            self.closing = true;
            progress = true;
        }

        match self.flush_out(cfg.request_timeout) {
            Ok(p) => progress |= p,
            Err(()) => return (true, false),
        }
        if let Some(d) = self.write_deadline {
            if Instant::now() >= d {
                return (true, false);
            }
        }

        let flushed = self.out_pos >= self.out.len();
        if (self.closing || self.read_closed)
            && self.inflight == 0
            && self.ready.is_empty()
            && flushed
        {
            return (progress, false);
        }
        (progress, true)
    }

    /// Writes as much queued output as the socket accepts.
    fn flush_out(&mut self, timeout: Duration) -> Result<bool, ()> {
        let mut progress = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    progress = true;
                    self.out_pos += n;
                    self.write_deadline = None;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.write_deadline.get_or_insert_with(|| Instant::now() + timeout);
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(()),
            }
        }
        if self.out_pos >= self.out.len() && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(progress)
    }
}

/// The readiness loop: completions → accepts → per-connection sweeps, with
/// adaptive idle backoff.
fn io_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
    job_tx: SyncSender<Job>,
    done_rx: Receiver<Done>,
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut gen_counter = 0u64;
    let mut buf = vec![0u8; 64 * 1024];
    let mut idle_spins = 0u32;
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        let mut progress = false;

        if !draining && shutdown.load(Ordering::SeqCst) {
            draining = true;
            drain_deadline = Instant::now() + cfg.request_timeout;
        }

        // 1. Compute completions: park each response in its connection's
        //    reorder map and flush whatever became in-order.
        while let Ok(done) = done_rx.try_recv() {
            progress = true;
            if let Some(Some(c)) = conns.get_mut(done.conn) {
                if c.gen == done.gen {
                    c.inflight -= 1;
                    c.queue(done.seq, (done.result, done.t0));
                    c.flush_ready(&engine);
                }
            }
        }

        // 2. Accept until the listener runs dry.
        if !draining {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        progress = true;
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.set_nodelay(true);
                        if live >= cfg.max_conns {
                            engine.stats().note_busy();
                            refuse(stream, &ServeError::Busy);
                            continue;
                        }
                        gen_counter += 1;
                        let conn = Conn::new(stream, gen_counter);
                        match free.pop() {
                            Some(id) => conns[id] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                        live += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break, // transient accept failure; retry next sweep
                }
            }
        }

        // 3. Service every live connection.
        for (id, slot) in conns.iter_mut().enumerate() {
            let Some(c) = slot.as_mut() else { continue };
            let (p, alive) = c.service(id, &engine, &cfg, &job_tx, draining, &mut buf);
            progress |= p;
            if !alive {
                *slot = None;
                free.push(id);
                live -= 1;
            }
        }
        engine.stats().set_conns(live as u64);

        if draining && (live == 0 || Instant::now() >= drain_deadline) {
            break;
        }

        // 4. Adaptive idle backoff: spin while hot, yield briefly, then
        //    sleep in escalating steps capped at `idle_poll`.
        if progress {
            idle_spins = 0;
        } else {
            idle_spins = idle_spins.saturating_add(1);
            if idle_spins <= 2 {
                std::thread::yield_now();
            } else {
                let us = 50u64 << (idle_spins - 3).min(10);
                std::thread::sleep(Duration::from_micros(us).min(cfg.idle_poll));
            }
        }
    }
    // Dropping `job_tx` lets idle workers observe Disconnected once the
    // queue drains; remaining connections close when `conns` drops.
}

/// Best-effort typed refusal of a connection we will not serve. The socket
/// is freshly accepted, so its send buffer is empty and a single
/// nonblocking write fits the whole error frame.
fn refuse(stream: TcpStream, err: &ServeError) {
    let mut frame = Vec::new();
    write_error(&mut frame, err).expect("vec write");
    let mut s = stream;
    let _ = s.write(&frame);
}

fn worker_loop(
    engine: Arc<Engine>,
    job_rx: Arc<Mutex<Receiver<Job>>>,
    done_tx: Sender<Done>,
    idle: Duration,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not while computing.
        let job = {
            let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(idle)
        };
        match job {
            Ok(job) => {
                let _inflight = engine.stats().begin_request();
                // A panic below a request (a kernel assert slipping past
                // validation) must not take the worker down with it.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_request(&engine, job.kind, &job.payload)
                }))
                .unwrap_or_else(|_| Err(ServeError::Internal("request handler panicked".into())));
                let done = Done { conn: job.conn, gen: job.gen, seq: job.seq, t0: job.t0, result };
                if done_tx.send(done).is_err() {
                    break; // IO loop is gone
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Decodes and executes one request frame.
fn handle_request(
    engine: &Engine,
    kind: u8,
    payload: &[u8],
) -> Result<(Kind, Vec<u8>), ServeError> {
    match Kind::from_u8(kind) {
        Some(Kind::Encode) => {
            let (batch, data) = decode_encode_payload(engine, payload)?;
            let (digest, hit) = engine.encode_patch(batch, data)?;
            Ok((Kind::EncodeResp, encode_resp(digest, hit)))
        }
        Some(Kind::Query) => {
            let mut c = Cursor::new(payload);
            let digest = c.u64()?;
            let queries = decode_queries(&mut c)?;
            c.finish()?;
            let (values, channels) = engine.query(digest, queries)?;
            Ok((Kind::QueryResp, query_resp(digest, true, &values, channels)))
        }
        Some(Kind::EncodeQuery) => {
            let mut c = Cursor::new(payload);
            let batch = c.u32()? as usize;
            let expect = checked_patch_numel(engine, batch)?;
            let data = c.f32s(expect)?;
            let queries = decode_queries(&mut c)?;
            c.finish()?;
            let (digest, hit, values, channels) = engine.encode_query(batch, data, queries)?;
            Ok((Kind::QueryResp, query_resp(digest, hit, &values, channels)))
        }
        Some(Kind::Refine) => {
            let mut c = Cursor::new(payload);
            let digest = c.u64()?;
            let budget = RefineBudget { max_steps: c.u32()?, tol: c.f32()?, max_micros: c.u64()? };
            let queries = decode_queries(&mut c)?;
            c.finish()?;
            let out = engine.refine(digest, queries, budget)?;
            Ok((Kind::RefineResp, refine_resp(digest, &out)))
        }
        // Ping/Info/Stats are answered inline by the IO loop; anything else
        // reaching the pool is protocol misuse.
        Some(_) | None => Err(ServeError::UnknownKind { kind }),
    }
}

/// Reads `batch: u32` then the patch f32s, which must fill the payload.
fn decode_encode_payload(engine: &Engine, payload: &[u8]) -> Result<(usize, Vec<f32>), ServeError> {
    let mut c = Cursor::new(payload);
    let batch = c.u32()? as usize;
    let expect = checked_patch_numel(engine, batch)?;
    let data = c.f32s(expect)?;
    c.finish()?;
    Ok((batch, data))
}

/// `patch_numel(batch)` guarded against absurd batch values: the result
/// must fit the frame cap, so a hostile `batch = u32::MAX` is rejected
/// before any allocation.
fn checked_patch_numel(engine: &Engine, batch: usize) -> Result<usize, ServeError> {
    if batch == 0 {
        return Err(ServeError::ShapeMismatch("encode batch must be >= 1".into()));
    }
    let per_patch = engine.patch_numel(1);
    let expect = batch.checked_mul(per_patch).filter(|&n| n * 4 <= protocol::MAX_PAYLOAD as usize);
    expect.ok_or_else(|| {
        ServeError::BadPayload(format!("batch {batch} patches exceed the frame cap"))
    })
}

fn decode_queries(c: &mut Cursor<'_>) -> Result<Vec<(usize, [f32; 3])>, ServeError> {
    let count = c.u32()? as usize;
    // 16 bytes per query; the cursor bounds-checks, so a lying count fails
    // before `count` can drive a large allocation.
    let mut qs = Vec::with_capacity(count.min(protocol::MAX_PAYLOAD as usize / 16));
    for _ in 0..count {
        let b = c.u32()? as usize;
        qs.push((b, [c.f32()?, c.f32()?, c.f32()?]));
    }
    Ok(qs)
}

fn encode_resp(digest: u64, hit: bool) -> Vec<u8> {
    let mut p = Vec::with_capacity(9);
    p.extend_from_slice(&digest.to_le_bytes());
    p.push(hit as u8);
    p
}

fn query_resp(digest: u64, hit: bool, values: &[f32], channels: usize) -> Vec<u8> {
    let count = values.len() / channels.max(1);
    let mut p = Vec::with_capacity(17 + values.len() * 4);
    p.extend_from_slice(&digest.to_le_bytes());
    p.push(hit as u8);
    p.extend_from_slice(&(count as u32).to_le_bytes());
    p.extend_from_slice(&(channels as u32).to_le_bytes());
    protocol::put_f32s(&mut p, values);
    p
}

fn refine_resp(digest: u64, out: &RefineOutcome) -> Vec<u8> {
    let count = out.values.len() / out.channels.max(1);
    let mut p = Vec::with_capacity(32 + out.values.len() * 4);
    p.extend_from_slice(&digest.to_le_bytes());
    p.extend_from_slice(&out.report.steps_run.to_le_bytes());
    p.extend_from_slice(&out.report.steps_accepted.to_le_bytes());
    p.extend_from_slice(&out.report.initial_residual.to_le_bytes());
    p.extend_from_slice(&out.report.final_residual.to_le_bytes());
    p.extend_from_slice(&(count as u32).to_le_bytes());
    p.extend_from_slice(&(out.channels as u32).to_le_bytes());
    protocol::put_f32s(&mut p, &out.values);
    p
}

fn publish_loop(
    engine: Arc<Engine>,
    recorder: Recorder,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) {
    if !recorder.is_enabled() {
        return;
    }
    let mut last_requests = 0u64;
    let mut last_t = Instant::now();
    loop {
        let stopping = shutdown.load(Ordering::SeqCst);
        if !stopping {
            std::thread::sleep(interval);
        }
        let stats = engine.stats();
        let now = Instant::now();
        let dt = now.duration_since(last_t).as_secs_f64().max(1e-9);
        let requests = stats.requests();
        recorder.gauge("serve.qps", (requests - last_requests) as f64 / dt);
        last_requests = requests;
        last_t = now;
        if let Some(p) = stats.latency_percentiles_us(&[0.5, 0.99]) {
            recorder.gauge("serve.p50_us", p[0] as f64);
            recorder.gauge("serve.p99_us", p[1] as f64);
        }
        recorder.gauge("serve.inflight", stats.inflight() as f64);
        recorder.gauge("serve.conns", stats.conns() as f64);
        recorder.gauge("serve.busy_rejects", stats.busy_rejects() as f64);
        recorder.gauge("serve.cache_hits", engine.cache().hits() as f64);
        recorder.gauge("serve.cache_misses", engine.cache().misses() as f64);
        recorder.gauge("serve.cache_collisions", engine.cache().collisions() as f64);
        recorder.gauge("serve.refines", stats.refines() as f64);
        recorder.gauge("serve.refine_steps", stats.refine_steps() as f64);
        let calls = engine.batcher().decode_calls();
        if calls > 0 {
            recorder.gauge(
                "serve.batch_size",
                engine.batcher().batched_queries() as f64 / calls as f64,
            );
        }
        // Flush every interval, not just at shutdown: a tailed JSONL sink
        // should show live gauges, and a killed process shouldn't lose the
        // whole run to a buffered writer.
        recorder.flush();
        if stopping {
            break;
        }
    }
}
