//! Blocking TCP server over the frame protocol.
//!
//! Architecture: one accept thread feeding a bounded channel of connections,
//! a fixed pool of worker threads each owning one connection at a time, and
//! a telemetry publisher thread. Everything is std — no async runtime; the
//! concurrency story is "a worker per active connection, blocking reads with
//! short timeouts".
//!
//! Timeout discipline per connection: at a frame boundary the worker polls
//! with a short *idle* read timeout so it can notice shutdown within
//! [`ServerConfig::idle_poll`]; the moment the first byte of a header
//! arrives, the socket switches to the full [`ServerConfig::request_timeout`]
//! — a client that stalls mid-frame gets a typed `Timeout` error, not a
//! leaked worker.
//!
//! Error discipline: payload-level failures (`BadPayload`, `ShapeMismatch`,
//! `UnknownDigest`, …) are answered with an error frame and the connection
//! lives on — the stream is still frame-aligned. Header-level failures
//! (`BadMagic`, `BadVersion`, `Oversized`, `Truncated`, `Timeout`) desync
//! the stream: the server writes the error frame, then closes.
//!
//! Shutdown is a drain: the accept thread stops taking connections, workers
//! finish the request they are on (frame boundaries check the flag), queued
//! but unstarted connections are told `ShuttingDown`, and `shutdown()`
//! joins every thread before returning.

use crate::engine::Engine;
use crate::error::ServeError;
use crate::protocol::{self, read_frame, write_error, write_frame, Cursor, Kind};
use mfn_telemetry::Recorder;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7077` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Accepted-but-unclaimed connection queue bound; beyond it clients get
    /// a typed `Busy` error.
    pub backlog: usize,
    /// Deadline for reading the remainder of a frame once it has started,
    /// and for writing responses.
    pub request_timeout: Duration,
    /// Poll interval at frame boundaries (bounds shutdown latency).
    pub idle_poll: Duration,
    /// Telemetry publish cadence.
    pub publish_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            backlog: 64,
            request_timeout: Duration::from_secs(2),
            idle_poll: Duration::from_millis(25),
            publish_interval: Duration::from_millis(500),
        }
    }
}

/// A running server; dropping or calling [`Server::shutdown`] drains it.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept/worker/publisher threads, and returns.
    pub fn start(
        engine: Arc<Engine>,
        cfg: ServerConfig,
        recorder: Recorder,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(resolve(&cfg.addr)?)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();

        {
            let shutdown = shutdown.clone();
            let idle = cfg.idle_poll;
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(listener, tx, shutdown, idle))?,
            );
        }
        for i in 0..cfg.workers.max(1) {
            let engine = engine.clone();
            let rx = rx.clone();
            let shutdown = shutdown.clone();
            let cfg = cfg.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(engine, rx, shutdown, cfg))?,
            );
        }
        {
            let engine = engine.clone();
            let shutdown = shutdown.clone();
            let interval = cfg.publish_interval;
            threads.push(
                std::thread::Builder::new()
                    .name("serve-telemetry".into())
                    .spawn(move || publish_loop(engine, recorder, shutdown, interval))?,
            );
        }
        Ok(Server { local_addr, shutdown, threads })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and joins every thread; in-flight requests finish,
    /// queued connections are refused with `ShuttingDown`.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("unresolvable {addr}"))
    })
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    shutdown: Arc<AtomicBool>,
    idle: Duration,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The accepted socket may inherit the listener's
                // non-blocking flag; workers want blocking reads.
                let _ = stream.set_nonblocking(false);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => refuse(stream, &ServeError::Busy),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(idle),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    // Dropping `tx` lets idle workers observe Disconnected once the queue
    // drains.
}

/// Best-effort typed refusal of a connection we will not serve.
fn refuse(stream: TcpStream, err: &ServeError) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut s = stream;
    let _ = write_error(&mut s, err);
}

fn worker_loop(
    engine: Arc<Engine>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    shutdown: Arc<AtomicBool>,
    cfg: ServerConfig,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not while serving.
        let next = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(cfg.idle_poll)
        };
        match next {
            Ok(stream) => {
                if shutdown.load(Ordering::SeqCst) {
                    refuse(stream, &ServeError::ShuttingDown);
                    continue;
                }
                handle_conn(&engine, stream, &shutdown, &cfg);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn handle_conn(engine: &Engine, stream: TcpStream, shutdown: &AtomicBool, cfg: &ServerConfig) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(cfg.request_timeout));
    let mut stream = stream;
    let mut first = [0u8; 1];
    loop {
        // Frame boundary: drain point for graceful shutdown.
        if shutdown.load(Ordering::SeqCst) {
            let _ = write_error(&mut stream, &ServeError::ShuttingDown);
            return;
        }
        let _ = stream.set_read_timeout(Some(cfg.idle_poll));
        match stream.read(&mut first) {
            Ok(0) => return, // peer closed cleanly between frames
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        // A frame has started: switch to the request deadline.
        let _ = stream.set_read_timeout(Some(cfg.request_timeout));
        let t0 = Instant::now();
        let _inflight = engine.stats().begin_request();
        let frame = {
            let mut r = (&first[..]).chain(&mut stream);
            read_frame(&mut r)
        };
        let (kind, payload) = match frame {
            Ok(Some(f)) => f,
            // Can't happen: we already consumed a byte, EOF now is
            // Truncated. Treat defensively as peer-gone.
            Ok(None) => return,
            Err(e) => {
                engine.stats().note_error();
                let _ = write_error(&mut stream, &e);
                return; // header-level failure: stream is desynced
            }
        };
        // A panic below a request (a kernel assert slipping past
        // validation) must not take the worker down with it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(engine, kind, &payload)
        }))
        .unwrap_or_else(|_| Err(ServeError::Internal("request handler panicked".into())));
        match result {
            Ok((resp_kind, resp)) => {
                if write_frame(&mut stream, resp_kind, &resp).is_err() {
                    return;
                }
                engine.stats().note_request(t0.elapsed().as_micros() as u64);
            }
            Err(e) => {
                engine.stats().note_error();
                if write_error(&mut stream, &e).is_err() {
                    return;
                }
                // Payload-level failure: frame-aligned, keep serving.
            }
        }
    }
}

/// Decodes and executes one request frame.
fn handle_request(
    engine: &Engine,
    kind: u8,
    payload: &[u8],
) -> Result<(Kind, Vec<u8>), ServeError> {
    match Kind::from_u8(kind) {
        Some(Kind::Ping) => {
            Cursor::new(payload).finish()?;
            Ok((Kind::Pong, Vec::new()))
        }
        Some(Kind::Info) => {
            Cursor::new(payload).finish()?;
            Ok((Kind::InfoResp, engine.info().encode()))
        }
        Some(Kind::Encode) => {
            let (batch, data) = decode_encode_payload(engine, payload, true)?;
            let (digest, hit) = engine.encode_patch(batch, data)?;
            Ok((Kind::EncodeResp, encode_resp(digest, hit)))
        }
        Some(Kind::Query) => {
            let mut c = Cursor::new(payload);
            let digest = c.u64()?;
            let queries = decode_queries(&mut c)?;
            c.finish()?;
            let (values, channels) = engine.query(digest, queries)?;
            Ok((Kind::QueryResp, query_resp(digest, true, &values, channels)))
        }
        Some(Kind::EncodeQuery) => {
            let mut c = Cursor::new(payload);
            let batch = c.u32()? as usize;
            let expect = checked_patch_numel(engine, batch)?;
            let data = c.f32s(expect)?;
            let queries = decode_queries(&mut c)?;
            c.finish()?;
            let (digest, hit, values, channels) = engine.encode_query(batch, data, queries)?;
            Ok((Kind::QueryResp, query_resp(digest, hit, &values, channels)))
        }
        // Response kinds arriving as requests are protocol misuse.
        Some(_) | None => Err(ServeError::UnknownKind { kind }),
    }
}

/// Reads `batch: u32` then the patch f32s. With `rest_is_data` the entire
/// remaining payload must be the patch (Encode frames).
fn decode_encode_payload(
    engine: &Engine,
    payload: &[u8],
    rest_is_data: bool,
) -> Result<(usize, Vec<f32>), ServeError> {
    let mut c = Cursor::new(payload);
    let batch = c.u32()? as usize;
    let expect = checked_patch_numel(engine, batch)?;
    let data = c.f32s(expect)?;
    if rest_is_data {
        c.finish()?;
    }
    Ok((batch, data))
}

/// `patch_numel(batch)` guarded against absurd batch values: the result
/// must fit the frame cap, so a hostile `batch = u32::MAX` is rejected
/// before any allocation.
fn checked_patch_numel(engine: &Engine, batch: usize) -> Result<usize, ServeError> {
    if batch == 0 {
        return Err(ServeError::ShapeMismatch("encode batch must be >= 1".into()));
    }
    let per_patch = engine.patch_numel(1);
    let expect = batch.checked_mul(per_patch).filter(|&n| n * 4 <= protocol::MAX_PAYLOAD as usize);
    expect.ok_or_else(|| {
        ServeError::BadPayload(format!("batch {batch} patches exceed the frame cap"))
    })
}

fn decode_queries(c: &mut Cursor<'_>) -> Result<Vec<(usize, [f32; 3])>, ServeError> {
    let count = c.u32()? as usize;
    // 16 bytes per query; the cursor bounds-checks, so a lying count fails
    // before `count` can drive a large allocation.
    let mut qs = Vec::with_capacity(count.min(protocol::MAX_PAYLOAD as usize / 16));
    for _ in 0..count {
        let b = c.u32()? as usize;
        qs.push((b, [c.f32()?, c.f32()?, c.f32()?]));
    }
    Ok(qs)
}

fn encode_resp(digest: u64, hit: bool) -> Vec<u8> {
    let mut p = Vec::with_capacity(9);
    p.extend_from_slice(&digest.to_le_bytes());
    p.push(hit as u8);
    p
}

fn query_resp(digest: u64, hit: bool, values: &[f32], channels: usize) -> Vec<u8> {
    let count = values.len() / channels.max(1);
    let mut p = Vec::with_capacity(17 + values.len() * 4);
    p.extend_from_slice(&digest.to_le_bytes());
    p.push(hit as u8);
    p.extend_from_slice(&(count as u32).to_le_bytes());
    p.extend_from_slice(&(channels as u32).to_le_bytes());
    protocol::put_f32s(&mut p, values);
    p
}

fn publish_loop(
    engine: Arc<Engine>,
    recorder: Recorder,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) {
    if !recorder.is_enabled() {
        return;
    }
    let mut last_requests = 0u64;
    let mut last_t = Instant::now();
    loop {
        let stopping = shutdown.load(Ordering::SeqCst);
        if !stopping {
            std::thread::sleep(interval);
        }
        let stats = engine.stats();
        let now = Instant::now();
        let dt = now.duration_since(last_t).as_secs_f64().max(1e-9);
        let requests = stats.requests();
        recorder.gauge("serve.qps", (requests - last_requests) as f64 / dt);
        last_requests = requests;
        last_t = now;
        if let Some(p) = stats.latency_percentiles_us(&[0.5, 0.99]) {
            recorder.gauge("serve.p50_us", p[0] as f64);
            recorder.gauge("serve.p99_us", p[1] as f64);
        }
        recorder.gauge("serve.inflight", stats.inflight() as f64);
        recorder.gauge("serve.cache_hits", engine.cache().hits() as f64);
        recorder.gauge("serve.cache_misses", engine.cache().misses() as f64);
        recorder.gauge("serve.cache_collisions", engine.cache().collisions() as f64);
        let calls = engine.batcher().decode_calls();
        if calls > 0 {
            recorder.gauge(
                "serve.batch_size",
                engine.batcher().batched_queries() as f64 / calls as f64,
            );
        }
        // Flush every interval, not just at shutdown: a tailed JSONL sink
        // should show live gauges, and a killed process shouldn't lose the
        // whole run to a buffered writer.
        recorder.flush();
        if stopping {
            break;
        }
    }
}
