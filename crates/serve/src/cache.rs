//! The latent-context cache: encode once, decode many.
//!
//! The whole economics of serving MeshfreeFlowNet hinges on one asymmetry:
//! pushing a patch through the 3D U-Net costs orders of magnitude more than
//! answering a point query against its Latent Context Grid. The cache keys
//! encoded latents by a digest of the *input patch bytes*, so any client
//! holding the same physical patch — or just the digest from a previous
//! `Encode` — skips the U-Net entirely.
//!
//! Keys are FNV-1a 64 over the patch dims plus the little-endian f32 bytes;
//! bit-identical inputs (the only kind a resubmitting client produces) hash
//! identically, and the digest doubles as the wire handle for `Query`
//! frames. Eviction is least-recently-used over a small capacity — serving
//! workloads replay a handful of hot patches (a frame being super-resolved,
//! a region being explored), not a uniform stream.
//!
//! A 64-bit digest is not a proof of identity: two *different* patches can
//! collide, and a cache that trusts the digest alone would then silently
//! hand the second client the first client's latent — wrong answers with no
//! error. Every entry therefore also stores a second, independently-mixed
//! verification hash of the same bytes ([`patch_verify`]); an encode-time
//! hit is only honoured when both hashes agree, and a digest match with a
//! verify mismatch is surfaced as [`Lookup::Collision`] and counted.

use mfn_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Digest of an input patch: FNV-1a 64 over the dims (as LE u64s) followed
/// by the raw little-endian f32 bytes. Stable across platforms and process
/// restarts — it is part of the wire protocol.
pub fn patch_digest(dims: &[usize], data: &[f32]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for &d in dims {
        for b in (d as u64).to_le_bytes() {
            eat(b);
        }
    }
    for &v in data {
        for b in v.to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// [`patch_digest`] computed from the raw little-endian f32 bytes instead
/// of decoded floats. Because the wire format *is* LE f32 bytes, hashing
/// them directly yields the identical digest without parsing a single
/// float — this is what lets the router assign an `Encode` frame to a
/// shard by looking at the payload bytes alone.
pub fn patch_digest_bytes(dims: &[usize], data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for &d in dims {
        for b in (d as u64).to_le_bytes() {
            eat(b);
        }
    }
    for &b in data {
        eat(b);
    }
    h
}

/// Second, independent hash of the same `(dims, data)` bytes, used to
/// verify that a digest hit really refers to the submitted patch.
///
/// This is a SplitMix64-style sequential mix over 64-bit words (each dim,
/// then each f32's bit pattern). Its avalanche structure (xor-shift +
/// odd-constant multiply) shares nothing with FNV-1a's byte-wise
/// multiply-xor, so an input pair colliding under one hash has no special
/// likelihood of colliding under the other: a simultaneous collision needs
/// ~128 matching bits. Unlike [`patch_digest`], this value never travels on
/// the wire — it only guards cache hits, so it can change without a
/// protocol bump.
pub fn patch_verify(dims: &[usize], data: &[f32]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut eat = |w: u64| {
        h = h.wrapping_add(w).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    };
    for &d in dims {
        eat(d as u64);
    }
    for &v in data {
        eat(v.to_bits() as u64);
    }
    h
}

/// Outcome of a verified cache lookup.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// Digest and verification hash both match: this latent was encoded
    /// from exactly the submitted bytes.
    Hit(Arc<Tensor>),
    /// The digest matches a cached entry but the verification hash does
    /// not: a different patch already owns this digest. Serving the cached
    /// latent would be silently wrong.
    Collision,
    /// No entry under this digest.
    Miss,
}

struct Entry {
    latent: Arc<Tensor>,
    verify: u64,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A bounded LRU cache from patch digest to encoded latent grid.
///
/// Latents are handed out as `Arc<Tensor>` so an eviction never invalidates
/// a batch currently decoding against the latent. Hit/miss counters are
/// lock-free; the map itself sits behind a `Mutex` — the critical section is
/// a hash lookup, dwarfed by the decode work on either side.
pub struct LatentCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl LatentCache {
    /// Creates a cache holding at most `capacity` latents (min 1).
    pub fn new(capacity: usize) -> Self {
        LatentCache {
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache lock means some thread panicked holding it; the
        // map is still structurally sound (no partial insert states), so
        // serving continues.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a latent by digest alone, bumping its recency. Counts a hit
    /// or miss.
    ///
    /// This is the `Query` path: the client holds only the wire handle (the
    /// digest from a previous `Encode`), so there are no bytes to verify
    /// against. Collision safety comes from the encode path — a digest is
    /// only handed out after [`LatentCache::get_verified`] confirmed the
    /// submitted bytes own it.
    pub fn get(&self, digest: u64) -> Option<Arc<Tensor>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&digest) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.latent.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a latent by digest *and* verification hash.
    ///
    /// Only a two-hash match is a [`Lookup::Hit`] (recency bumped, hit
    /// counted). A digest match whose stored verify differs is a
    /// [`Lookup::Collision`]: the entry belongs to different patch bytes,
    /// so its recency is left alone and the collision counter is bumped.
    pub fn get_verified(&self, digest: u64, verify: u64) -> Lookup {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&digest) {
            Some(e) if e.verify == verify => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(e.latent.clone())
            }
            Some(_) => {
                self.collisions.fetch_add(1, Ordering::Relaxed);
                Lookup::Collision
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Checks presence without touching recency or counters (used by the
    /// engine to decide hit/miss before paying for an encode).
    pub fn contains(&self, digest: u64) -> bool {
        self.lock().map.contains_key(&digest)
    }

    /// Inserts a latent under its digest and verification hash, evicting
    /// the least-recently-used entry if full.
    pub fn insert(&self, digest: u64, verify: u64, latent: Arc<Tensor>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&digest) && inner.map.len() >= self.capacity {
            // O(capacity) scan — capacity is tens of entries, each worth
            // megabytes of latent; a heap would be noise here.
            if let Some(&lru) = inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k) {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(digest, Entry { latent, verify, last_used: tick });
    }

    /// Number of cached latents.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total digest collisions detected since creation (a digest hit whose
    /// verification hash disagreed). Any nonzero value here means a client
    /// would have received a wrong latent under the old trust-the-digest
    /// scheme.
    pub fn collisions(&self) -> u64 {
        self.collisions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f32) -> Arc<Tensor> {
        Arc::new(Tensor::full(&[1], v))
    }

    #[test]
    fn digest_is_stable_and_shape_sensitive() {
        let data = [1.0f32, 2.0, 3.0, 4.0];
        let a = patch_digest(&[2, 2], &data);
        assert_eq!(a, patch_digest(&[2, 2], &data), "digest must be deterministic");
        assert_ne!(a, patch_digest(&[4, 1], &data), "dims are part of the key");
        let raw: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(a, patch_digest_bytes(&[2, 2], &raw), "byte path must match float path");
        assert_ne!(a, patch_digest(&[2, 2], &[1.0, 2.0, 3.0, 5.0]));
        // -0.0 and 0.0 differ bitwise, so they are different patches.
        assert_ne!(patch_digest(&[1], &[0.0]), patch_digest(&[1], &[-0.0]));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = LatentCache::new(2);
        c.insert(1, 10, t(1.0));
        c.insert(2, 20, t(2.0));
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.insert(3, 30, t(3.0)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let c = LatentCache::new(2);
        c.insert(1, 10, t(1.0));
        c.insert(2, 20, t(2.0));
        c.insert(1, 10, t(1.5)); // overwrite, cache stays at 2 entries
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2).unwrap().item(), 2.0);
        assert_eq!(c.get(1).unwrap().item(), 1.5);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let c = LatentCache::new(4);
        assert!(c.get(9).is_none());
        c.insert(9, 90, t(9.0));
        assert!(c.get(9).is_some());
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn eviction_does_not_invalidate_borrowed_latent() {
        let c = LatentCache::new(1);
        c.insert(1, 10, t(1.0));
        let held = c.get(1).unwrap();
        c.insert(2, 20, t(2.0)); // evicts 1 from the map
        assert!(c.get(1).is_none());
        assert_eq!(held.item(), 1.0, "Arc keeps the evicted latent alive");
    }

    #[test]
    fn verify_hash_is_independent_of_digest() {
        // Two inputs whose digests differ must (with overwhelming
        // probability) also have differing verify hashes, and the two
        // hashes of one input must not be trivially related.
        let a = ([2usize, 2], [1.0f32, 2.0, 3.0, 4.0]);
        let b = ([2usize, 2], [1.0f32, 2.0, 3.0, 5.0]);
        assert_ne!(patch_verify(&a.0, &a.1), patch_verify(&b.0, &b.1));
        assert_ne!(patch_verify(&a.0, &a.1), patch_digest(&a.0, &a.1));
        // Deterministic (it guards the cache across worker threads).
        assert_eq!(patch_verify(&a.0, &a.1), patch_verify(&a.0, &a.1));
        // Dims are part of the keyed bytes, and bit patterns matter.
        assert_ne!(patch_verify(&[4, 1], &a.1), patch_verify(&[2, 2], &a.1));
        assert_ne!(patch_verify(&[1], &[0.0]), patch_verify(&[1], &[-0.0]));
    }

    #[test]
    fn verified_lookup_detects_poisoned_digest() {
        // Simulate an FNV collision: a latent already sits under digest 7
        // with verify hash 111; a different patch arrives whose bytes also
        // digest to 7 but verify to 222.
        let c = LatentCache::new(4);
        c.insert(7, 111, t(1.0));
        assert!(matches!(c.get_verified(7, 111), Lookup::Hit(_)));
        assert!(matches!(c.get_verified(7, 222), Lookup::Collision));
        assert!(matches!(c.get_verified(8, 111), Lookup::Miss));
        assert_eq!(c.collisions(), 1);
        // The collision neither hit nor missed; counters stay consistent.
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // The rightful owner still gets its latent afterwards.
        assert!(matches!(c.get_verified(7, 111), Lookup::Hit(_)));
    }

    #[test]
    fn collision_does_not_bump_recency() {
        let c = LatentCache::new(2);
        c.insert(1, 10, t(1.0));
        c.insert(2, 20, t(2.0));
        // A colliding probe against 1 must not refresh it...
        assert!(matches!(c.get_verified(1, 999), Lookup::Collision));
        // ...so inserting a third entry still evicts 1 (the true LRU).
        c.insert(3, 30, t(3.0));
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
    }
}
