//! The latent-context cache: encode once, decode many.
//!
//! The whole economics of serving MeshfreeFlowNet hinges on one asymmetry:
//! pushing a patch through the 3D U-Net costs orders of magnitude more than
//! answering a point query against its Latent Context Grid. The cache keys
//! encoded latents by a digest of the *input patch bytes*, so any client
//! holding the same physical patch — or just the digest from a previous
//! `Encode` — skips the U-Net entirely.
//!
//! Keys are FNV-1a 64 over the patch dims plus the little-endian f32 bytes;
//! bit-identical inputs (the only kind a resubmitting client produces) hash
//! identically, and the digest doubles as the wire handle for `Query`
//! frames. Eviction is least-recently-used over a small capacity — serving
//! workloads replay a handful of hot patches (a frame being super-resolved,
//! a region being explored), not a uniform stream.

use mfn_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Digest of an input patch: FNV-1a 64 over the dims (as LE u64s) followed
/// by the raw little-endian f32 bytes. Stable across platforms and process
/// restarts — it is part of the wire protocol.
pub fn patch_digest(dims: &[usize], data: &[f32]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for &d in dims {
        for b in (d as u64).to_le_bytes() {
            eat(b);
        }
    }
    for &v in data {
        for b in v.to_le_bytes() {
            eat(b);
        }
    }
    h
}

struct Entry {
    latent: Arc<Tensor>,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

/// A bounded LRU cache from patch digest to encoded latent grid.
///
/// Latents are handed out as `Arc<Tensor>` so an eviction never invalidates
/// a batch currently decoding against the latent. Hit/miss counters are
/// lock-free; the map itself sits behind a `Mutex` — the critical section is
/// a hash lookup, dwarfed by the decode work on either side.
pub struct LatentCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LatentCache {
    /// Creates a cache holding at most `capacity` latents (min 1).
    pub fn new(capacity: usize) -> Self {
        LatentCache {
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache lock means some thread panicked holding it; the
        // map is still structurally sound (no partial insert states), so
        // serving continues.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a latent, bumping its recency. Counts a hit or miss.
    pub fn get(&self, digest: u64) -> Option<Arc<Tensor>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&digest) {
            Some(e) => {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.latent.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Checks presence without touching recency or counters (used by the
    /// engine to decide hit/miss before paying for an encode).
    pub fn contains(&self, digest: u64) -> bool {
        self.lock().map.contains_key(&digest)
    }

    /// Inserts a latent, evicting the least-recently-used entry if full.
    pub fn insert(&self, digest: u64, latent: Arc<Tensor>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&digest) && inner.map.len() >= self.capacity {
            // O(capacity) scan — capacity is tens of entries, each worth
            // megabytes of latent; a heap would be noise here.
            if let Some(&lru) = inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k) {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(digest, Entry { latent, last_used: tick });
    }

    /// Number of cached latents.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f32) -> Arc<Tensor> {
        Arc::new(Tensor::full(&[1], v))
    }

    #[test]
    fn digest_is_stable_and_shape_sensitive() {
        let data = [1.0f32, 2.0, 3.0, 4.0];
        let a = patch_digest(&[2, 2], &data);
        assert_eq!(a, patch_digest(&[2, 2], &data), "digest must be deterministic");
        assert_ne!(a, patch_digest(&[4, 1], &data), "dims are part of the key");
        assert_ne!(a, patch_digest(&[2, 2], &[1.0, 2.0, 3.0, 5.0]));
        // -0.0 and 0.0 differ bitwise, so they are different patches.
        assert_ne!(patch_digest(&[1], &[0.0]), patch_digest(&[1], &[-0.0]));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = LatentCache::new(2);
        c.insert(1, t(1.0));
        c.insert(2, t(2.0));
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.insert(3, t(3.0)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let c = LatentCache::new(2);
        c.insert(1, t(1.0));
        c.insert(2, t(2.0));
        c.insert(1, t(1.5)); // overwrite, cache stays at 2 entries
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2).unwrap().item(), 2.0);
        assert_eq!(c.get(1).unwrap().item(), 1.5);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let c = LatentCache::new(4);
        assert!(c.get(9).is_none());
        c.insert(9, t(9.0));
        assert!(c.get(9).is_some());
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn eviction_does_not_invalidate_borrowed_latent() {
        let c = LatentCache::new(1);
        c.insert(1, t(1.0));
        let held = c.get(1).unwrap();
        c.insert(2, t(2.0)); // evicts 1 from the map
        assert!(c.get(1).is_none());
        assert_eq!(held.item(), 1.0, "Arc keeps the evicted latent alive");
    }
}
