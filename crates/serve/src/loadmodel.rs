//! Deterministic load synthesis for the fleet benchmark.
//!
//! An honest serving benchmark needs two things a naive loop doesn't give:
//!
//! - **Skewed popularity.** Real query traffic replays a handful of hot
//!   patches (the frame being super-resolved, the region being explored),
//!   which is exactly what makes the latent cache and the leader–follower
//!   batcher pay off. [`Zipf`] models that: patch rank `k` is drawn with
//!   probability `∝ 1/k^s`.
//! - **Open-loop arrivals.** A closed loop (send, wait, send) lets a slow
//!   server throttle its own load, hiding queueing delay — the coordinated
//!   omission trap. [`ArrivalSchedule`] instead fixes *offered* load as a
//!   Poisson process (exponential inter-arrival gaps at a target rate);
//!   latency is then measured from the scheduled arrival time, so time a
//!   request spent waiting to be sent counts against the server.
//!
//! Everything is seeded [`SplitMix64`]: a pinned seed reproduces the exact
//! same digests-per-request and send schedule on every platform, which is
//! what lets CI assert bench regressions rather than noise.

/// SplitMix64: the 64-bit PRNG used for all load synthesis. Tiny state,
/// full-period, and its output function is a bijective avalanche — good
/// enough statistically for sampling, and trivially portable.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator at `seed`; the same seed replays the same stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 random bits (f64 mantissa width).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`. `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // Multiply-shift: maps a 64-bit draw to [0, n) with bias < 2^-64·n —
        // immaterial at benchmark sample counts, and branch-free.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Zipf(s) sampler over ranks `0..n`: rank `k` (0-based) has probability
/// proportional to `1/(k+1)^s`. Sampling is a uniform draw against a
/// precomputed CDF with binary search — exact, O(log n) per draw, and
/// deterministic given the RNG stream.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n ≥ 1` ranks with exponent `s ≥ 0` (`s = 0` is
    /// uniform; `s ≈ 1` is classic web-cache skew).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf over zero ranks");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k` (0-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// Open-loop Poisson arrival schedule: request `i` is *due* at
/// `offsets_us[i]` microseconds after the run starts, with exponential
/// inter-arrival gaps at `rate` requests/second. The sender sleeps until
/// each due time and measures latency from it — a server that can't keep up
/// accrues queueing delay in its tail instead of silently shedding offered
/// load.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    offsets_us: Vec<u64>,
}

impl ArrivalSchedule {
    /// A schedule of `count` arrivals at `rate` req/s (must be positive).
    pub fn new(rate: f64, count: usize, rng: &mut SplitMix64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "arrival rate must be positive");
        let mut offsets_us = Vec::with_capacity(count);
        let mut t = 0.0f64;
        for _ in 0..count {
            // Inverse-CDF exponential: gap = -ln(1-u)/rate; 1-u avoids
            // ln(0) since next_f64 ∈ [0, 1).
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / rate;
            offsets_us.push((t * 1e6) as u64);
        }
        ArrivalSchedule { offsets_us }
    }

    /// Scheduled send offsets in µs from run start, nondecreasing.
    pub fn offsets_us(&self) -> &[u64] {
        &self.offsets_us
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets_us.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets_us.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_with_known_values() {
        // First draws from seed 0 — fixed by the SplitMix64 definition, so
        // any platform or codegen change that altered them would fail here.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_helpers_stay_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn zipf_matches_closed_form_pmf() {
        let z = Zipf::new(5, 1.0);
        // H_5 = 1 + 1/2 + 1/3 + 1/4 + 1/5
        let h5 = 137.0 / 60.0;
        for k in 0..5 {
            let expect = 1.0 / ((k + 1) as f64) / h5;
            assert!((z.pmf(k) - expect).abs() < 1e-12, "pmf({k})");
        }
        let mut rng = SplitMix64::new(1);
        let mut counts = [0usize; 5];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let got = count as f64 / n as f64;
            assert!(
                (got - z.pmf(k)).abs() < 0.01,
                "rank {k}: sampled {got:.4} vs pmf {:.4}",
                z.pmf(k)
            );
        }
        // s = 0 degenerates to uniform.
        let u = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((u.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_is_reproducible_under_pinned_seed() {
        let z = Zipf::new(64, 1.1);
        let mut a = SplitMix64::new(0xDEAD_BEEF);
        let mut b = SplitMix64::new(0xDEAD_BEEF);
        let seq_a: Vec<usize> = (0..256).map(|_| z.sample(&mut a)).collect();
        let seq_b: Vec<usize> = (0..256).map(|_| z.sample(&mut b)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn arrival_schedule_is_sorted_reproducible_and_near_rate() {
        let mut a = SplitMix64::new(99);
        let s1 = ArrivalSchedule::new(1000.0, 10_000, &mut a);
        let mut b = SplitMix64::new(99);
        let s2 = ArrivalSchedule::new(1000.0, 10_000, &mut b);
        assert_eq!(s1.offsets_us(), s2.offsets_us());
        assert!(s1.offsets_us().windows(2).all(|w| w[0] <= w[1]), "offsets must be nondecreasing");
        // 10k arrivals at 1000/s span ~10s; mean gap 1000µs ± a few %.
        let span = *s1.offsets_us().last().unwrap() as f64;
        let mean_gap = span / 10_000.0;
        assert!(
            (900.0..1100.0).contains(&mean_gap),
            "mean inter-arrival {mean_gap:.1}µs, expected ~1000µs"
        );
    }
}
