//! # mfn-serve
//!
//! Continuous-query inference serving for a trained MeshfreeFlowNet.
//!
//! The paper's architecture splits inference into an expensive half (the 3D
//! U-Net encoding a low-resolution patch into a Latent Context Grid) and a
//! cheap half (an MLP answering arbitrary continuous `(t, z, x)` queries
//! against that grid). This crate exploits the split as a serving system:
//!
//! - [`engine`]: a grad-free [`Engine`] over [`mfn_core::FrozenModel`] —
//!   no autodiff tape, batch norm on frozen running statistics, `&self`
//!   everywhere so one engine serves all threads;
//! - [`cache`]: an LRU [`LatentCache`] keyed by a digest of the input patch
//!   bytes — *encode once, decode many*;
//! - [`batcher`]: a leader–follower micro-[`Batcher`] coalescing concurrent
//!   point queries against the same latent into single decode calls;
//! - [`protocol`] / [`server`] / [`client`]: a std-only, length-prefixed
//!   binary TCP protocol with versioned headers, typed error frames, a
//!   bounded worker pool, per-request timeouts, and graceful drain;
//! - [`metrics`]: serving counters published as `serve.*` telemetry.
//!
//! Binaries: `serve` (load a checkpoint, listen) and `loadgen` (drive a
//! server, write `BENCH_serve.json`).

pub mod batcher;
pub mod cache;
pub mod client;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, Query};
pub use cache::{patch_digest, patch_verify, LatentCache, Lookup};
pub use client::{Client, QueryResult};
pub use engine::{Engine, EngineConfig};
pub use error::ServeError;
pub use metrics::ServeStats;
pub use protocol::ModelInfo;
pub use server::{Server, ServerConfig};
