//! # mfn-serve
//!
//! Continuous-query inference serving for a trained MeshfreeFlowNet.
//!
//! The paper's architecture splits inference into an expensive half (the 3D
//! U-Net encoding a low-resolution patch into a Latent Context Grid) and a
//! cheap half (an MLP answering arbitrary continuous `(t, z, x)` queries
//! against that grid). This crate exploits the split as a serving system:
//!
//! - [`engine`]: a grad-free [`Engine`] over [`mfn_core::FrozenModel`] —
//!   no autodiff tape, batch norm on frozen running statistics, `&self`
//!   everywhere so one engine serves all threads;
//! - [`cache`]: an LRU [`LatentCache`] keyed by a digest of the input patch
//!   bytes — *encode once, decode many*;
//! - [`batcher`]: a leader–follower micro-[`Batcher`] coalescing concurrent
//!   point queries against the same latent into single decode calls;
//! - [`protocol`] / [`server`] / [`client`]: a std-only, length-prefixed
//!   binary TCP protocol with versioned headers, typed error frames, and an
//!   incremental [`protocol::FrameDecoder`] for nonblocking streams;
//! - [`server`]: a readiness-loop server — one IO thread multiplexing all
//!   connections over nonblocking sockets with per-connection state
//!   machines, a bounded compute-worker pool, admission control, and
//!   graceful drain;
//! - [`ring`] / [`router`]: fleet scale-out — a consistent-hash [`HashRing`]
//!   shards the latent cache by patch digest across N servers, and the
//!   [`Router`] forwards frames digest-affinely while health-checking
//!   replicas;
//! - [`loadmodel`]: deterministic load synthesis — zipf patch popularity and
//!   open-loop exponential arrivals under a pinned seed;
//! - [`metrics`]: serving counters published as `serve.*` telemetry.
//!
//! Binaries: `serve` (load a checkpoint, listen), `router` (front a shard
//! fleet), and `loadgen` (drive a server or fleet; writes
//! `BENCH_serve.json` / `BENCH_fleet.json`).

pub mod batcher;
pub mod cache;
pub mod client;
pub mod engine;
pub mod error;
pub mod loadmodel;
pub mod metrics;
pub mod protocol;
pub mod ring;
pub mod router;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, Query};
pub use cache::{patch_digest, patch_digest_bytes, patch_verify, LatentCache, Lookup};
pub use client::{Client, QueryResult, RefineResult};
pub use engine::{
    Engine, EngineConfig, RefineOutcome, MAX_INFLIGHT_REFINE_COST, MAX_REFINE_POINTS,
    MAX_REFINE_STEPS,
};
pub use error::ServeError;
pub use loadmodel::{ArrivalSchedule, SplitMix64, Zipf};
pub use metrics::ServeStats;
pub use protocol::{ModelInfo, ShardStat};
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
pub use server::{Server, ServerConfig};
