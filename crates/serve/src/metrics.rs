//! Serving-side counters and latency tracking.
//!
//! [`ServeStats`] is the one object every layer of the server touches, so it
//! is built to be cheap under contention: monotonic counters are relaxed
//! atomics, and per-request latencies go into a fixed-size ring behind a
//! mutex whose critical section is two array writes. Percentiles are
//! computed on demand from a snapshot of the ring (recent window, not
//! all-time), which is what a load generator or telemetry gauge wants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Latencies retained for percentile estimates.
const RING_CAPACITY: usize = 4096;

struct Ring {
    buf: Vec<u64>,
    next: usize,
    len: usize,
}

/// Shared serving counters. All methods take `&self`.
pub struct ServeStats {
    requests: AtomicU64,
    errors: AtomicU64,
    inflight: AtomicU64,
    queries: AtomicU64,
    conns: AtomicU64,
    busy_rejects: AtomicU64,
    refines: AtomicU64,
    refine_steps: AtomicU64,
    latencies: Mutex<Ring>,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

impl ServeStats {
    /// Fresh, all-zero stats.
    pub fn new() -> Self {
        ServeStats {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            busy_rejects: AtomicU64::new(0),
            refines: AtomicU64::new(0),
            refine_steps: AtomicU64::new(0),
            latencies: Mutex::new(Ring { buf: vec![0; RING_CAPACITY], next: 0, len: 0 }),
        }
    }

    fn ring(&self) -> MutexGuard<'_, Ring> {
        self.latencies.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks a request as started; the returned guard decrements the
    /// in-flight gauge on drop (including during unwinding).
    pub fn begin_request(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { stats: self }
    }

    /// Records one completed request and its latency.
    pub fn note_request(&self, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut r = self.ring();
        let next = r.next;
        r.buf[next] = latency_us;
        r.next = (next + 1) % RING_CAPACITY;
        r.len = (r.len + 1).min(RING_CAPACITY);
    }

    /// Records one request that ended in a (typed) error.
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` query points answered.
    pub fn note_queries(&self, n: u64) {
        self.queries.fetch_add(n, Ordering::Relaxed);
    }

    /// Completed requests so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Errored requests so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Requests currently being processed.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Query points answered so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Publishes the current open-connection count (set by the IO loop).
    pub fn set_conns(&self, n: u64) {
        self.conns.store(n, Ordering::Relaxed);
    }

    /// Connections currently open.
    pub fn conns(&self) -> u64 {
        self.conns.load(Ordering::Relaxed)
    }

    /// Records one admission-control rejection (`Busy`).
    pub fn note_busy(&self) {
        self.busy_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests or connections refused with `Busy` so far.
    pub fn busy_rejects(&self) -> u64 {
        self.busy_rejects.load(Ordering::Relaxed)
    }

    /// Records one completed refinement and the candidate steps it ran.
    pub fn note_refine(&self, steps: u64) {
        self.refines.fetch_add(1, Ordering::Relaxed);
        self.refine_steps.fetch_add(steps, Ordering::Relaxed);
    }

    /// Completed refinement requests so far.
    pub fn refines(&self) -> u64 {
        self.refines.load(Ordering::Relaxed)
    }

    /// Gradient candidate steps run across all refinements so far.
    pub fn refine_steps(&self) -> u64 {
        self.refine_steps.load(Ordering::Relaxed)
    }

    /// Latency percentiles (µs) over the recent window, one per requested
    /// quantile in `[0, 1]`. Returns `None` when no requests completed yet.
    pub fn latency_percentiles_us(&self, quantiles: &[f64]) -> Option<Vec<u64>> {
        let sorted = {
            let r = self.ring();
            if r.len == 0 {
                return None;
            }
            let mut v = r.buf[..r.len].to_vec();
            drop(r);
            v.sort_unstable();
            v
        };
        Some(
            quantiles
                .iter()
                .map(|&q| {
                    let idx = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
                    sorted[idx]
                })
                .collect(),
        )
    }
}

/// RAII in-flight marker from [`ServeStats::begin_request`].
pub struct InflightGuard<'a> {
    stats: &'a ServeStats,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.stats.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_guard_is_exception_safe() {
        let s = ServeStats::new();
        {
            let _g = s.begin_request();
            assert_eq!(s.inflight(), 1);
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _g2 = s.begin_request();
                panic!("boom");
            }));
            assert!(res.is_err());
        }
        assert_eq!(s.inflight(), 0, "guards must decrement on drop and unwind");
    }

    #[test]
    fn percentiles_over_recent_window() {
        let s = ServeStats::new();
        assert!(s.latency_percentiles_us(&[0.5]).is_none());
        for us in 1..=100 {
            s.note_request(us);
        }
        let p = s.latency_percentiles_us(&[0.0, 0.5, 0.99, 1.0]).unwrap();
        assert_eq!(p[0], 1);
        assert!((49..=52).contains(&p[1]), "p50 of 1..=100 was {}", p[1]);
        assert!(p[2] >= 98);
        assert_eq!(p[3], 100);
        assert_eq!(s.requests(), 100);
    }

    #[test]
    fn ring_wraps_without_growing() {
        let s = ServeStats::new();
        for us in 0..(RING_CAPACITY as u64 + 50) {
            s.note_request(us);
        }
        // Samples 0..50 were overwritten; the retained window is 50..4146.
        let p = s.latency_percentiles_us(&[0.0]).unwrap();
        assert!(p[0] >= 50, "oldest sample should have been overwritten, min was {}", p[0]);
        assert_eq!(s.requests(), RING_CAPACITY as u64 + 50);
    }
}
