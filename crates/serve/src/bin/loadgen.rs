//! `loadgen` — drive a running `serve` instance and write `BENCH_serve.json`.
//!
//! ```text
//! usage: loadgen --addr HOST:PORT [--threads N] [--duration-s N]
//!                [--patches N] [--queries-per-req N] [--out PATH] [--strict]
//! ```
//!
//! Three phases:
//! 1. **Encode-miss**: encode `--patches` fresh deterministic patches,
//!    timing each cold (U-Net) encode.
//! 2. **Cache-hit**: re-encode the same patches (pure cache lookups) and
//!    run point queries against their latents, timing both.
//! 3. **Main**: `--threads` connections hammer queries for `--duration-s`
//!    seconds; aggregate QPS and latency percentiles.
//!
//! The summary JSON includes `hit_to_miss_speedup` — the encode-miss p50
//! over the cache-hit p50, i.e. how much the latent cache buys. `--strict`
//! exits nonzero when the run saw zero completed requests or any protocol
//! error, which is how CI asserts a live end-to-end serving path.

use mfn_serve::{Client, ServeError};
use std::io::Write;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    threads: usize,
    duration_s: u64,
    patches: usize,
    queries_per_req: usize,
    out: PathBuf,
    strict: bool,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: loadgen --addr HOST:PORT [--threads N] [--duration-s N] \
                 [--patches N] [--queries-per-req N] [--out PATH] [--strict]";
    let mut addr = None;
    let mut threads = 2usize;
    let mut duration_s = 5u64;
    let mut patches = 4usize;
    let mut queries_per_req = 64usize;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut strict = false;
    let mut i = 0;
    let next = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {what} needs a value\n{usage}");
                std::process::exit(2);
            })
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = Some(next(&argv, &mut i, "--addr")),
            "--threads" => threads = next(&argv, &mut i, "--threads").parse().expect("integer"),
            "--duration-s" => {
                duration_s = next(&argv, &mut i, "--duration-s").parse().expect("integer")
            }
            "--patches" => patches = next(&argv, &mut i, "--patches").parse().expect("integer"),
            "--queries-per-req" => {
                queries_per_req = next(&argv, &mut i, "--queries-per-req").parse().expect("integer")
            }
            "--out" => out = PathBuf::from(next(&argv, &mut i, "--out")),
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args {
        addr: addr.unwrap_or_else(|| {
            eprintln!("error: --addr is required\n{usage}");
            std::process::exit(2);
        }),
        threads: threads.max(1),
        duration_s: duration_s.max(1),
        patches: patches.max(1),
        queries_per_req: queries_per_req.max(1),
        out,
        strict,
    }
}

/// Deterministic 64-bit LCG (same constants as the kernel bench).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

fn lcg_f32(state: &mut u64) -> f32 {
    ((lcg(state) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

/// Patch `idx` of the run: deterministic so every thread (and every rerun
/// against a warm server) produces bit-identical bytes, hence equal digests.
fn gen_patch(idx: usize, numel: usize) -> Vec<f32> {
    let mut state = (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..numel).map(|_| lcg_f32(&mut state)).collect()
}

fn gen_queries(state: &mut u64, n: usize) -> Vec<(usize, [f32; 3])> {
    (0..n)
        .map(|_| (0usize, [lcg_f32(state) + 0.5, lcg_f32(state) + 0.5, lcg_f32(state) + 0.5]))
        .collect()
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
}

fn main() {
    let args = parse();
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let info = client.info().unwrap_or_else(|e| {
        eprintln!("error: info request failed: {e}");
        std::process::exit(1);
    });
    let numel = (info.in_channels * info.grid[0] * info.grid[1] * info.grid[2]) as usize;
    eprintln!(
        "server: {} params, {} trained steps, grid {:?}, patch numel {numel}",
        info.param_count, info.trained_steps, info.grid
    );

    // Phase 1+2: encode-miss vs cache-hit latency, single connection.
    let mut miss_us = Vec::new();
    let mut hit_encode_us = Vec::new();
    let mut hit_query_us = Vec::new();
    let mut digests = Vec::new();
    let mut qstate = 0x5EED_u64;
    for idx in 0..args.patches {
        let patch = gen_patch(idx, numel);
        let t0 = Instant::now();
        let (digest, was_hit) = client.encode(1, &patch).unwrap_or_else(|e| {
            eprintln!("error: encode failed: {e}");
            std::process::exit(1);
        });
        let us = t0.elapsed().as_micros() as u64;
        // A warm server (rerun against the same instance) hits immediately;
        // only genuine misses enter the miss distribution.
        if was_hit {
            hit_encode_us.push(us);
        } else {
            miss_us.push(us);
        }
        digests.push(digest);
    }
    for idx in 0..args.patches {
        let patch = gen_patch(idx, numel);
        let t0 = Instant::now();
        let (_, was_hit) = client.encode(1, &patch).expect("re-encode");
        assert!(was_hit, "second encode of identical patch must hit the cache");
        hit_encode_us.push(t0.elapsed().as_micros() as u64);
    }
    for &digest in &digests {
        for _ in 0..8 {
            let qs = gen_queries(&mut qstate, args.queries_per_req);
            let t0 = Instant::now();
            client.query(digest, &qs).expect("warm query");
            hit_query_us.push(t0.elapsed().as_micros() as u64);
        }
    }
    miss_us.sort_unstable();
    hit_encode_us.sort_unstable();
    hit_query_us.sort_unstable();
    let miss_p50 = percentile_us(&miss_us, 0.5);
    let hit_enc_p50 = percentile_us(&hit_encode_us, 0.5);
    let hit_query_p50 = percentile_us(&hit_query_us, 0.5);
    let speedup = miss_p50 as f64 / hit_enc_p50.max(1) as f64;
    eprintln!(
        "encode miss p50 {miss_p50} us | cache-hit encode p50 {hit_enc_p50} us \
         ({speedup:.1}x) | cache-hit query p50 {hit_query_p50} us"
    );

    // Phase 3: multi-threaded sustained load.
    let deadline = Instant::now() + Duration::from_secs(args.duration_s);
    let digests = std::sync::Arc::new(digests);
    let t_start = Instant::now();
    let handles: Vec<_> = (0..args.threads)
        .map(|tid| {
            let addr = args.addr.clone();
            let digests = digests.clone();
            let qn = args.queries_per_req;
            std::thread::spawn(move || {
                let mut requests = 0u64;
                let mut errors = 0u64;
                let mut lat_us = Vec::new();
                let mut state = (tid as u64 + 1) * 0xA5A5_5A5A;
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 1, lat_us),
                };
                while Instant::now() < deadline {
                    let pick = (lcg(&mut state) as usize) % digests.len();
                    let qs = gen_queries(&mut state, qn);
                    let t0 = Instant::now();
                    // 1-in-8 requests exercise the combined encode+query
                    // path; the rest query cached latents by digest.
                    let res = if lcg(&mut state).is_multiple_of(8) {
                        let patch = gen_patch(pick, numel);
                        client.encode_query(1, &patch, &qs).map(|_| ())
                    } else {
                        match client.query(digests[pick], &qs) {
                            // Evicted digest (tiny cache): re-encode and go on.
                            Err(ServeError::Remote { code, .. })
                                if code == mfn_serve::error::code::UNKNOWN_DIGEST =>
                            {
                                let patch = gen_patch(pick, numel);
                                client.encode_query(1, &patch, &qs).map(|_| ())
                            }
                            other => other.map(|_| ()),
                        }
                    };
                    match res {
                        Ok(()) => {
                            requests += 1;
                            lat_us.push(t0.elapsed().as_micros() as u64);
                        }
                        Err(e) => {
                            errors += 1;
                            eprintln!("loadgen thread {tid}: {e}");
                            // Reconnect once; a dropped connection mid-run
                            // otherwise poisons the remaining duration.
                            match Client::connect(&addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                (requests, errors, lat_us)
            })
        })
        .collect();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut lat_us = Vec::new();
    for h in handles {
        let (r, e, mut l) = h.join().expect("loadgen thread");
        requests += r;
        errors += e;
        lat_us.append(&mut l);
    }
    let elapsed = t_start.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    let qps = requests as f64 / elapsed;
    let p50 = percentile_us(&lat_us, 0.5);
    let p90 = percentile_us(&lat_us, 0.9);
    let p99 = percentile_us(&lat_us, 0.99);
    eprintln!(
        "{requests} requests in {elapsed:.1}s = {qps:.0} qps | p50 {p50} us, \
         p90 {p90} us, p99 {p99} us | {errors} errors"
    );

    let json = format!(
        "{{\n  \"schema\": \"mfn-bench/serve/v1\",\n  \"config\": {{\n    \
         \"addr\": \"{addr}\",\n    \"threads\": {threads},\n    \
         \"duration_s\": {duration},\n    \"patches\": {patches},\n    \
         \"queries_per_req\": {qpr}\n  }},\n  \"cache\": {{\n    \
         \"encode_miss_us_p50\": {miss_p50},\n    \
         \"cache_hit_encode_us_p50\": {hit_enc_p50},\n    \
         \"cache_hit_query_us_p50\": {hit_query_p50},\n    \
         \"hit_to_miss_speedup\": {speedup:.2}\n  }},\n  \"load\": {{\n    \
         \"requests\": {requests},\n    \"protocol_errors\": {errors},\n    \
         \"qps\": {qps:.2},\n    \"p50_us\": {p50},\n    \"p90_us\": {p90},\n    \
         \"p99_us\": {p99}\n  }},\n  \"server\": {{\n    \
         \"param_count\": {params},\n    \"trained_steps\": {steps}\n  }}\n}}\n",
        addr = args.addr,
        threads = args.threads,
        duration = args.duration_s,
        patches = args.patches,
        qpr = args.queries_per_req,
        params = info.param_count,
        steps = info.trained_steps,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    print!("{json}");
    let _ = std::io::stdout().flush();
    eprintln!("wrote {}", args.out.display());

    if args.strict && (requests == 0 || errors > 0) {
        eprintln!(
            "STRICT FAILURE: requests = {requests}, protocol_errors = {errors} \
             (need requests > 0 and zero errors)"
        );
        std::process::exit(1);
    }
}
