//! `loadgen` — drive a running `serve` instance (or a router-fronted
//! fleet) and write a benchmark summary.
//!
//! ```text
//! usage: loadgen --addr HOST:PORT [--threads N] [--duration-s N]
//!                [--patches N] [--queries-per-req N] [--out PATH] [--strict]
//!                [--fleet] [--rates R1,R2,...] [--conns N] [--zipf-s F]
//!                [--seed N] [--closed-addr HOST:PORT] [--slo-ms F]
//!                [--refine] [--refine-budgets K1,K2,...] [--refine-points N]
//!                [--min-reduction F]
//! ```
//!
//! **Closed-loop mode** (default) has three phases:
//! 1. **Encode-miss**: encode `--patches` fresh deterministic patches,
//!    timing each cold (U-Net) encode.
//! 2. **Cache-hit**: re-encode the same patches (pure cache lookups) and
//!    run point queries against their latents, timing both.
//! 3. **Main**: `--threads` connections hammer queries for `--duration-s`
//!    seconds; aggregate QPS and latency percentiles.
//!
//! The summary JSON includes `hit_to_miss_speedup` — the encode-miss p50
//! over the cache-hit p50, i.e. how much the latent cache buys. `--strict`
//! exits nonzero when the run saw zero completed requests or any protocol
//! error, which is how CI asserts a live end-to-end serving path.
//!
//! **Fleet mode** (`--fleet`) is open-loop: for each offered rate in
//! `--rates`, a seeded Poisson arrival schedule fixes *when* each request
//! is due and a zipf(`--zipf-s`) draw over `--patches` ranks fixes *which*
//! patch it queries; latency is measured from the scheduled due time, so
//! queueing delay the server causes counts against its tail (no
//! coordinated omission). The sweep plus per-shard cache stats (via the
//! `Stats` frame — one entry per healthy shard when `--addr` is a router)
//! land in `BENCH_fleet.json`. The whole workload is a pure function of
//! `--seed`.
//!
//! The sweep's **knee** is the highest-throughput rate point whose p99
//! stays under the latency SLO (`--slo-ms`, default 50 ms) — raw max
//! achieved QPS is meaningless open-loop, because an overloaded server
//! still "achieves" high QPS while its queue (and tail) grow without
//! bound. When every rate busts the SLO the knee falls back to the
//! lowest-p99 point and is flagged `met_slo: false`.
//!
//! After the sweep, fleet mode also runs one *closed-loop* phase
//! (`--threads` self-paced connections, per-request RTT — the exact
//! measurement the historical `BENCH_baseline.json` used) against
//! `--closed-addr` (default `--addr`). Pointing it at a single shard's
//! direct address yields the apples-to-apples single-server comparison the
//! open-loop sweep cannot provide; it lands in the `closed_loop` section.
//!
//! **Refine mode** (`--refine`) sweeps the test-time physics refinement
//! quality/latency tradeoff against a `serve --refine` instance: encode one
//! smooth Rayleigh–Bénard-like patch, then for each step budget in
//! `--refine-budgets` issue repeated `Refine` requests at the same
//! deterministic query points and record the server-reported PDE residual
//! before/after plus request latency percentiles. The curve lands in the
//! `refine` section of the output JSON. `--min-reduction F` makes the run
//! fail unless some budget achieved at least an `F`× residual reduction —
//! the CI quality gate for the endpoint.

use mfn_core::RefineBudget;
use mfn_serve::{ArrivalSchedule, Client, ServeError, ShardStat, SplitMix64, Zipf};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    threads: usize,
    duration_s: u64,
    patches: usize,
    queries_per_req: usize,
    out: PathBuf,
    strict: bool,
    fleet: bool,
    rates: Vec<f64>,
    conns: usize,
    zipf_s: f64,
    seed: u64,
    closed_addr: Option<String>,
    slo_ms: f64,
    refine: bool,
    refine_budgets: Vec<u32>,
    refine_points: usize,
    min_reduction: f64,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: loadgen --addr HOST:PORT [--threads N] [--duration-s N] \
                 [--patches N] [--queries-per-req N] [--out PATH] [--strict] \
                 [--fleet] [--rates R1,R2,...] [--conns N] [--zipf-s F] [--seed N] \
                 [--closed-addr HOST:PORT] [--slo-ms F] [--refine] \
                 [--refine-budgets K1,K2,...] [--refine-points N] [--min-reduction F]";
    let mut addr = None;
    let mut threads = 2usize;
    let mut duration_s = 5u64;
    let mut patches = 4usize;
    let mut queries_per_req = 64usize;
    let mut out = None;
    let mut strict = false;
    let mut fleet = false;
    let mut rates = vec![500.0, 1000.0, 1750.0, 2500.0];
    let mut conns = 16usize;
    let mut zipf_s = 1.0f64;
    let mut seed = 0x4D46_4E53u64; // "MFNS"
    let mut closed_addr = None;
    let mut slo_ms = 50.0f64;
    let mut refine = false;
    let mut refine_budgets = vec![0u32, 1, 2, 4, 8, 16, 32, 64];
    let mut refine_points = 16usize;
    let mut min_reduction = 0.0f64;
    let mut i = 0;
    let next = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {what} needs a value\n{usage}");
                std::process::exit(2);
            })
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = Some(next(&argv, &mut i, "--addr")),
            "--threads" => threads = next(&argv, &mut i, "--threads").parse().expect("integer"),
            "--duration-s" => {
                duration_s = next(&argv, &mut i, "--duration-s").parse().expect("integer")
            }
            "--patches" => patches = next(&argv, &mut i, "--patches").parse().expect("integer"),
            "--queries-per-req" => {
                queries_per_req = next(&argv, &mut i, "--queries-per-req").parse().expect("integer")
            }
            "--out" => out = Some(PathBuf::from(next(&argv, &mut i, "--out"))),
            "--strict" => strict = true,
            "--fleet" => fleet = true,
            "--rates" => {
                rates = next(&argv, &mut i, "--rates")
                    .split(',')
                    .map(|r| r.trim().parse().expect("rate"))
                    .collect()
            }
            "--conns" => conns = next(&argv, &mut i, "--conns").parse().expect("integer"),
            "--zipf-s" => zipf_s = next(&argv, &mut i, "--zipf-s").parse().expect("float"),
            "--seed" => seed = next(&argv, &mut i, "--seed").parse().expect("integer"),
            "--closed-addr" => closed_addr = Some(next(&argv, &mut i, "--closed-addr")),
            "--slo-ms" => slo_ms = next(&argv, &mut i, "--slo-ms").parse().expect("float"),
            "--refine" => refine = true,
            "--refine-budgets" => {
                refine_budgets = next(&argv, &mut i, "--refine-budgets")
                    .split(',')
                    .map(|k| k.trim().parse().expect("step budget"))
                    .collect()
            }
            "--refine-points" => {
                refine_points = next(&argv, &mut i, "--refine-points").parse().expect("integer")
            }
            "--min-reduction" => {
                min_reduction = next(&argv, &mut i, "--min-reduction").parse().expect("float")
            }
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args {
        addr: addr.unwrap_or_else(|| {
            eprintln!("error: --addr is required\n{usage}");
            std::process::exit(2);
        }),
        threads: threads.max(1),
        duration_s: duration_s.max(1),
        patches: patches.max(1),
        queries_per_req: queries_per_req.max(1),
        out: out.unwrap_or_else(|| {
            PathBuf::from(if fleet { "BENCH_fleet.json" } else { "BENCH_serve.json" })
        }),
        strict,
        fleet,
        rates,
        conns: conns.max(1),
        zipf_s,
        seed,
        closed_addr,
        slo_ms,
        refine,
        refine_budgets,
        refine_points: refine_points.max(1),
        min_reduction,
    }
}

/// Deterministic 64-bit LCG (same constants as the kernel bench).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

fn lcg_f32(state: &mut u64) -> f32 {
    ((lcg(state) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

/// Patch `idx` of the run: deterministic so every thread (and every rerun
/// against a warm server) produces bit-identical bytes, hence equal digests.
fn gen_patch(idx: usize, numel: usize) -> Vec<f32> {
    let mut state = (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..numel).map(|_| lcg_f32(&mut state)).collect()
}

fn gen_queries(state: &mut u64, n: usize) -> Vec<(usize, [f32; 3])> {
    (0..n)
        .map(|_| (0usize, [lcg_f32(state) + 0.5, lcg_f32(state) + 0.5, lcg_f32(state) + 0.5]))
        .collect()
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)]
}

/// One measured point of the open-loop sweep.
struct RatePoint {
    offered_qps: f64,
    achieved_qps: f64,
    requests: u64,
    errors: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// Runs one offered-load level: `count` requests due at seeded Poisson
/// times, zipf-picked patches, spread round-robin over `conns` connections.
/// Latency for request `i` runs from its *scheduled* due time to response
/// receipt, so a server falling behind pays the backlog in its tail.
#[allow(clippy::too_many_arguments)]
fn run_rate(
    addr: &str,
    rate: f64,
    duration_s: u64,
    conns: usize,
    digests: Arc<Vec<u64>>,
    numel: usize,
    qn: usize,
    zipf_s: f64,
    seed: u64,
) -> RatePoint {
    // Per-rate RNG stream: the whole workload (schedule + picks) is a pure
    // function of (seed, rate), independent of thread interleaving.
    let mut rng = SplitMix64::new(seed ^ rate.to_bits());
    let count = ((rate * duration_s as f64) as usize).max(1);
    let schedule = ArrivalSchedule::new(rate, count, &mut rng);
    let zipf = Zipf::new(digests.len(), zipf_s);
    let picks: Vec<usize> = (0..count).map(|_| zipf.sample(&mut rng)).collect();
    let offsets = Arc::new(schedule.offsets_us().to_vec());
    let picks = Arc::new(picks);
    // All senders arm on a barrier so "due time" means the same instant
    // everywhere; the extra slot releases them from this thread.
    let barrier = Arc::new(Barrier::new(conns + 1));
    let start_cell = Arc::new(std::sync::OnceLock::<Instant>::new());

    let handles: Vec<_> = (0..conns)
        .map(|cid| {
            let addr = addr.to_string();
            let offsets = offsets.clone();
            let picks = picks.clone();
            let digests = digests.clone();
            let barrier = barrier.clone();
            let start_cell = start_cell.clone();
            std::thread::spawn(move || {
                let mut lat_us: Vec<u64> = Vec::new();
                let mut errors = 0u64;
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => {
                        barrier.wait();
                        return (lat_us, 1u64);
                    }
                };
                barrier.wait();
                let start = *start_cell.wait();
                let mut i = cid;
                while i < offsets.len() {
                    let due = start + Duration::from_micros(offsets[i]);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    // Query content depends only on the request index.
                    let mut qstate = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED;
                    let qs = gen_queries(&mut qstate, qn);
                    let pick = picks[i];
                    let res = match client.query(digests[pick], &qs) {
                        // A rerouted or evicted digest misses on the shard
                        // now owning it: re-encode in-band and continue —
                        // the same recovery a single-server client uses.
                        Err(ServeError::Remote { code, .. })
                            if code == mfn_serve::error::code::UNKNOWN_DIGEST =>
                        {
                            let patch = gen_patch(pick, numel);
                            client.encode_query(1, &patch, &qs).map(|_| ())
                        }
                        other => other.map(|_| ()),
                    };
                    match res {
                        Ok(()) => {
                            lat_us.push(due.elapsed().as_micros() as u64);
                        }
                        Err(e) => {
                            errors += 1;
                            eprintln!("loadgen conn {cid}: {e}");
                            match Client::connect(&addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                    i += conns;
                }
                (lat_us, errors)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let _ = start_cell.set(start);

    let mut lat_us = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (mut l, e) = h.join().expect("loadgen conn thread");
        lat_us.append(&mut l);
        errors += e;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let requests = lat_us.len() as u64;
    lat_us.sort_unstable();
    RatePoint {
        offered_qps: rate,
        achieved_qps: requests as f64 / elapsed,
        requests,
        errors,
        p50_us: percentile_us(&lat_us, 0.5),
        p90_us: percentile_us(&lat_us, 0.9),
        p99_us: percentile_us(&lat_us, 0.99),
        max_us: lat_us.last().copied().unwrap_or(0),
    }
}

/// Picks the sweep's knee under a latency SLO: the index of the point with
/// the highest achieved throughput among those whose p99 is at or under
/// `slo_us`, and `true` for "met the SLO". Raw max-achieved-QPS is the
/// wrong "best" for an open-loop sweep — a saturated server keeps
/// completing requests at high rate while every one of them sits in queue
/// past any usable latency. If no point meets the SLO the knee falls back
/// to the lowest-p99 point (ties: higher throughput) with `false`.
fn pick_knee(sweep: &[RatePoint], slo_us: u64) -> (usize, bool) {
    let under = sweep
        .iter()
        .enumerate()
        .filter(|(_, p)| p.p99_us <= slo_us)
        .max_by(|(_, a), (_, b)| a.achieved_qps.total_cmp(&b.achieved_qps));
    if let Some((i, _)) = under {
        return (i, true);
    }
    let (i, _) = sweep
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.p99_us.cmp(&b.p99_us).then(b.achieved_qps.total_cmp(&a.achieved_qps))
        })
        .expect("at least one rate point");
    (i, false)
}

/// Aggregate result of the closed-loop comparison phase.
struct ClosedLoop {
    addr: String,
    threads: usize,
    requests: u64,
    errors: u64,
    qps: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
}

/// Closed-loop phase: `threads` self-paced connections issue back-to-back
/// queries over the warm digests for `duration_s`, timing per-request RTT —
/// the measurement regime of the historical blocking-server baseline, so
/// the resulting qps/p99 compare directly against `BENCH_baseline.json`.
fn run_closed(
    addr: &str,
    threads: usize,
    duration_s: u64,
    digests: Arc<Vec<u64>>,
    numel: usize,
    qn: usize,
) -> ClosedLoop {
    let deadline = Instant::now() + Duration::from_secs(duration_s);
    let t_start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let addr = addr.to_string();
            let digests = digests.clone();
            std::thread::spawn(move || {
                let mut lat_us = Vec::new();
                let mut errors = 0u64;
                let mut state = (tid as u64 + 1) * 0xA5A5_5A5A;
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => return (lat_us, 1u64),
                };
                while Instant::now() < deadline {
                    let pick = (lcg(&mut state) as usize) % digests.len();
                    let qs = gen_queries(&mut state, qn);
                    let t0 = Instant::now();
                    let res = match client.query(digests[pick], &qs) {
                        // A digest owned by a different shard misses here
                        // (this phase may target one shard directly): the
                        // standard re-encode recovery warms it locally.
                        Err(ServeError::Remote { code, .. })
                            if code == mfn_serve::error::code::UNKNOWN_DIGEST =>
                        {
                            let patch = gen_patch(pick, numel);
                            client.encode_query(1, &patch, &qs).map(|_| ())
                        }
                        other => other.map(|_| ()),
                    };
                    match res {
                        Ok(()) => lat_us.push(t0.elapsed().as_micros() as u64),
                        Err(e) => {
                            errors += 1;
                            eprintln!("closed-loop thread {tid}: {e}");
                            match Client::connect(&addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                (lat_us, errors)
            })
        })
        .collect();
    let mut lat_us = Vec::new();
    let mut errors = 0u64;
    for h in handles {
        let (mut l, e) = h.join().expect("closed-loop thread");
        lat_us.append(&mut l);
        errors += e;
    }
    let elapsed = t_start.elapsed().as_secs_f64();
    let requests = lat_us.len() as u64;
    lat_us.sort_unstable();
    ClosedLoop {
        addr: addr.to_string(),
        threads,
        requests,
        errors,
        qps: requests as f64 / elapsed,
        p50_us: percentile_us(&lat_us, 0.5),
        p90_us: percentile_us(&lat_us, 0.9),
        p99_us: percentile_us(&lat_us, 0.99),
    }
}

fn fleet_main(args: Args) {
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let info = client.info().unwrap_or_else(|e| {
        eprintln!("error: info request failed: {e}");
        std::process::exit(1);
    });
    let numel = (info.in_channels * info.grid[0] * info.grid[1] * info.grid[2]) as usize;
    eprintln!(
        "fleet target: {} params, grid {:?}, patch numel {numel}, \
         {} patches, zipf s={}, seed {}",
        info.param_count, info.grid, args.patches, args.zipf_s, args.seed
    );

    // Warm phase: encode every patch once so the sweep measures the
    // steady decode path. Through a router these land on each digest's
    // owning shard — encode-once fleet-wide.
    let mut digests = Vec::with_capacity(args.patches);
    for idx in 0..args.patches {
        let patch = gen_patch(idx, numel);
        let (digest, _) = client.encode(1, &patch).unwrap_or_else(|e| {
            eprintln!("error: warm encode failed: {e}");
            std::process::exit(1);
        });
        digests.push(digest);
    }
    let digests = Arc::new(digests);

    let mut sweep = Vec::new();
    for &rate in &args.rates {
        let pt = run_rate(
            &args.addr,
            rate,
            args.duration_s,
            args.conns,
            digests.clone(),
            numel,
            args.queries_per_req,
            args.zipf_s,
            args.seed,
        );
        eprintln!(
            "offered {:.0} qps -> achieved {:.0} qps | p50 {} us, p90 {} us, \
             p99 {} us, max {} us | {} errors",
            pt.offered_qps, pt.achieved_qps, pt.p50_us, pt.p90_us, pt.p99_us, pt.max_us, pt.errors
        );
        sweep.push(pt);
    }

    // Per-shard cache economics after the sweep. Against a router this is
    // one entry per healthy shard; against a single server, one entry.
    let shards: Vec<ShardStat> = client.stats().unwrap_or_else(|e| {
        eprintln!("error: stats request failed: {e}");
        std::process::exit(1);
    });
    for s in &shards {
        let total = (s.cache_hits + s.cache_misses).max(1);
        eprintln!(
            "shard {}: {} reqs, cache {}/{} hit/miss ({:.1}% hit), \
             {} decode calls / {} batched queries",
            s.addr,
            s.requests,
            s.cache_hits,
            s.cache_misses,
            100.0 * s.cache_hits as f64 / total as f64,
            s.decode_calls,
            s.batched_queries,
        );
    }

    // Closed-loop comparison, after the stats snapshot so the per-shard
    // counters above describe the sweep alone.
    let closed_target = args.closed_addr.clone().unwrap_or_else(|| args.addr.clone());
    let closed = run_closed(
        &closed_target,
        args.threads,
        args.duration_s,
        digests.clone(),
        numel,
        args.queries_per_req,
    );
    eprintln!(
        "closed-loop vs {}: {} reqs = {:.0} qps | p50 {} us, p90 {} us, p99 {} us | {} errors",
        closed.addr,
        closed.requests,
        closed.qps,
        closed.p50_us,
        closed.p90_us,
        closed.p99_us,
        closed.errors
    );

    let slo_us = (args.slo_ms * 1000.0) as u64;
    let (knee_idx, met_slo) = pick_knee(&sweep, slo_us);
    let knee = &sweep[knee_idx];
    eprintln!(
        "knee @ p99<={:.0}ms SLO: offered {:.0} qps -> achieved {:.0} qps, p99 {} us{}",
        args.slo_ms,
        knee.offered_qps,
        knee.achieved_qps,
        knee.p99_us,
        if met_slo { "" } else { " (NO rate met the SLO; lowest-p99 point shown)" },
    );
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mfn-bench/fleet/v2\",\n  \"config\": {\n");
    json.push_str(&format!(
        "    \"addr\": \"{}\",\n    \"conns\": {},\n    \"duration_s_per_rate\": {},\n    \
         \"patches\": {},\n    \"queries_per_req\": {},\n    \"zipf_s\": {},\n    \
         \"seed\": {},\n    \"slo_ms\": {}\n  }},\n",
        args.addr,
        args.conns,
        args.duration_s,
        args.patches,
        args.queries_per_req,
        args.zipf_s,
        args.seed,
        args.slo_ms
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"offered_qps\": {:.1}, \"achieved_qps\": {:.2}, \"requests\": {}, \
             \"protocol_errors\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \
             \"max_us\": {} }}{}\n",
            p.offered_qps,
            p.achieved_qps,
            p.requests,
            p.errors,
            p.p50_us,
            p.p90_us,
            p.p99_us,
            p.max_us,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    // `knee` is the headline number; `best` keeps the old key pointing at
    // the same (now SLO-aware) point so existing report readers still work.
    json.push_str(&format!(
        "  \"knee\": {{ \"offered_qps\": {:.1}, \"achieved_qps\": {:.2}, \"p99_us\": {}, \
         \"slo_us\": {slo_us}, \"met_slo\": {met_slo} }},\n",
        knee.offered_qps, knee.achieved_qps, knee.p99_us
    ));
    json.push_str(&format!(
        "  \"best\": {{ \"offered_qps\": {:.1}, \"achieved_qps\": {:.2}, \"p99_us\": {} }},\n",
        knee.offered_qps, knee.achieved_qps, knee.p99_us
    ));
    json.push_str(&format!(
        "  \"closed_loop\": {{ \"addr\": \"{}\", \"threads\": {}, \"duration_s\": {}, \
         \"requests\": {}, \"protocol_errors\": {}, \"qps\": {:.2}, \"p50_us\": {}, \
         \"p90_us\": {}, \"p99_us\": {} }},\n",
        closed.addr,
        closed.threads,
        args.duration_s,
        closed.requests,
        closed.errors,
        closed.qps,
        closed.p50_us,
        closed.p90_us,
        closed.p99_us,
    ));
    json.push_str("  \"shards\": [\n");
    for (i, s) in shards.iter().enumerate() {
        let total = (s.cache_hits + s.cache_misses).max(1);
        json.push_str(&format!(
            "    {{ \"addr\": \"{}\", \"requests\": {}, \"errors\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"hit_rate\": {:.4}, \"cache_len\": {}, \
             \"decode_calls\": {}, \"batched_queries\": {} }}{}\n",
            s.addr,
            s.requests,
            s.errors,
            s.cache_hits,
            s.cache_misses,
            s.cache_hits as f64 / total as f64,
            s.cache_len,
            s.decode_calls,
            s.batched_queries,
            if i + 1 < shards.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write BENCH_fleet.json");
    print!("{json}");
    let _ = std::io::stdout().flush();
    eprintln!("wrote {}", args.out.display());

    let total_requests: u64 = sweep.iter().map(|p| p.requests).sum::<u64>() + closed.requests;
    let total_errors: u64 = sweep.iter().map(|p| p.errors).sum::<u64>() + closed.errors;
    if args.strict && (total_requests == 0 || total_errors > 0) {
        eprintln!(
            "STRICT FAILURE: requests = {total_requests}, protocol_errors = {total_errors} \
             (need requests > 0 and zero errors)"
        );
        std::process::exit(1);
    }
}

/// Smooth Rayleigh–Bénard-like patch for the refinement sweep: a conductive
/// temperature profile plus a single convection roll, layout `[C, nt, nz,
/// nx]`. The white-noise `gen_patch` is right for cache and throughput
/// benchmarking but wrong here — refinement minimizes the PDE residual of
/// the *decoded* field, and a latent encoded from pure noise has no
/// physically meaningful residual landscape to descend.
fn gen_smooth_patch(channels: usize, nt: usize, nz: usize, nx: usize) -> Vec<f32> {
    use std::f64::consts::PI;
    let mut out = Vec::with_capacity(channels * nt * nz * nx);
    for c in 0..channels {
        for it in 0..nt {
            let t = it as f64 / nt.max(1) as f64;
            for iz in 0..nz {
                let z = iz as f64 / (nz.max(2) - 1) as f64;
                for ix in 0..nx {
                    let x = ix as f64 / nx.max(1) as f64;
                    let roll = (PI * z).sin() * (2.0 * PI * x + 0.3 * t).cos();
                    let v = match c {
                        0 => (1.0 - z) + 0.1 * roll,
                        1 => 0.05 * (PI * z).cos() * (2.0 * PI * x).cos(),
                        2 => 0.1 * (PI * z).cos() * (2.0 * PI * x + 0.3 * t).sin(),
                        _ => 0.1 * roll,
                    };
                    out.push(v as f32);
                }
            }
        }
    }
    out
}

/// One measured point of the refinement quality/latency sweep.
struct RefinePoint {
    max_steps: u32,
    steps_run: u32,
    steps_accepted: u32,
    initial_residual: f32,
    final_residual: f32,
    reduction: f64,
    p50_us: u64,
    p99_us: u64,
}

/// Refinement sweep: one smooth patch, fixed deterministic query points,
/// repeated `Refine` calls per step budget. Quality (server-reported
/// residual reduction) and cost (request latency) per budget land in the
/// `refine` section of the output JSON; `--min-reduction` turns the best
/// reduction into a pass/fail gate.
fn refine_main(args: Args) {
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let info = client.info().unwrap_or_else(|e| {
        eprintln!("error: info request failed: {e}");
        std::process::exit(1);
    });
    let (c, nt, nz, nx) = (
        info.in_channels as usize,
        info.grid[0] as usize,
        info.grid[1] as usize,
        info.grid[2] as usize,
    );
    let patch = gen_smooth_patch(c, nt, nz, nx);
    let (digest, _) = client.encode(1, &patch).unwrap_or_else(|e| {
        eprintln!("error: encode failed: {e}");
        std::process::exit(1);
    });
    // Interior points well away from the FD clamp band, fixed across the
    // whole sweep so every budget refines against the same objective.
    let mut qstate = args.seed ^ 0x5EED;
    let qs: Vec<(usize, [f32; 3])> = (0..args.refine_points)
        .map(|_| {
            let mut coord = || 0.1 + 0.8 * (lcg_f32(&mut qstate) + 0.5);
            (0usize, [coord(), coord(), coord()])
        })
        .collect();
    eprintln!(
        "refine sweep: digest {digest:#018x}, {} points, budgets {:?}",
        qs.len(),
        args.refine_budgets
    );

    const REPS: usize = 8;
    let mut errors = 0u64;
    let mut requests = 0u64;
    let mut curve: Vec<RefinePoint> = Vec::new();
    for &k in &args.refine_budgets {
        let budget = RefineBudget { max_steps: k, tol: 0.0, max_micros: 0 };
        let mut lat_us: Vec<u64> = Vec::new();
        let mut first: Option<mfn_serve::RefineResult> = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let res = match client.refine(digest, &qs, budget) {
                // Evicted digest: the standard re-encode recovery, then retry.
                Err(ServeError::Remote { code, .. })
                    if code == mfn_serve::error::code::UNKNOWN_DIGEST =>
                {
                    let patch = gen_smooth_patch(c, nt, nz, nx);
                    client.encode(1, &patch).and_then(|_| client.refine(digest, &qs, budget))
                }
                other => other,
            };
            match res {
                Ok(r) => {
                    requests += 1;
                    lat_us.push(t0.elapsed().as_micros() as u64);
                    // Untimed budgets are deterministic: reruns against the
                    // same latent must agree bit-for-bit.
                    if let Some(f) = &first {
                        if r.values != f.values || r.final_residual != f.final_residual {
                            errors += 1;
                            eprintln!(
                                "refine sweep: nondeterministic response at budget {k} \
                                 ({} vs {} final residual)",
                                r.final_residual, f.final_residual
                            );
                        }
                    } else {
                        first = Some(r);
                    }
                }
                Err(e) => {
                    errors += 1;
                    eprintln!("refine sweep: budget {k}: {e}");
                    match Client::connect(&args.addr) {
                        Ok(cl) => client = cl,
                        Err(_) => break,
                    }
                }
            }
        }
        let Some(r) = first else { continue };
        lat_us.sort_unstable();
        let reduction = if r.final_residual > 0.0 {
            r.initial_residual as f64 / r.final_residual as f64
        } else {
            f64::INFINITY
        };
        let pt = RefinePoint {
            max_steps: k,
            steps_run: r.steps_run,
            steps_accepted: r.steps_accepted,
            initial_residual: r.initial_residual,
            final_residual: r.final_residual,
            reduction,
            p50_us: percentile_us(&lat_us, 0.5),
            p99_us: percentile_us(&lat_us, 0.99),
        };
        eprintln!(
            "budget {:>3}: residual {:.6} -> {:.6} ({:.2}x, {}/{} steps accepted) | \
             p50 {} us, p99 {} us",
            pt.max_steps,
            pt.initial_residual,
            pt.final_residual,
            pt.reduction,
            pt.steps_accepted,
            pt.steps_run,
            pt.p50_us,
            pt.p99_us
        );
        curve.push(pt);
    }

    let best_reduction = curve.iter().map(|p| p.reduction).fold(0.0f64, f64::max);
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"mfn-bench/serve-refine/v1\",\n  \"config\": {\n");
    json.push_str(&format!(
        "    \"addr\": \"{}\",\n    \"points\": {},\n    \"reps_per_budget\": {REPS},\n    \
         \"seed\": {},\n    \"min_reduction\": {}\n  }},\n",
        args.addr,
        qs.len(),
        args.seed,
        args.min_reduction
    ));
    json.push_str("  \"curve\": [\n");
    for (i, p) in curve.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"max_steps\": {}, \"steps_run\": {}, \"steps_accepted\": {}, \
             \"initial_residual\": {:.6}, \"final_residual\": {:.6}, \"reduction\": {:.4}, \
             \"p50_us\": {}, \"p99_us\": {} }}{}\n",
            p.max_steps,
            p.steps_run,
            p.steps_accepted,
            p.initial_residual,
            p.final_residual,
            p.reduction,
            p.p50_us,
            p.p99_us,
            if i + 1 < curve.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"best_reduction\": {best_reduction:.4},\n  \
         \"requests\": {requests},\n  \"protocol_errors\": {errors}\n}}\n"
    ));
    std::fs::write(&args.out, &json).expect("write refine bench json");
    print!("{json}");
    let _ = std::io::stdout().flush();
    eprintln!("wrote {}", args.out.display());

    if args.strict && (requests == 0 || errors > 0) {
        eprintln!(
            "STRICT FAILURE: requests = {requests}, protocol_errors = {errors} \
             (need requests > 0 and zero errors)"
        );
        std::process::exit(1);
    }
    if args.min_reduction > 0.0 && best_reduction < args.min_reduction {
        eprintln!(
            "QUALITY GATE FAILURE: best residual reduction {best_reduction:.2}x \
             < required {:.2}x",
            args.min_reduction
        );
        std::process::exit(1);
    }
}

fn main() {
    let args = parse();
    if args.refine {
        return refine_main(args);
    }
    if args.fleet {
        return fleet_main(args);
    }
    let mut client = Client::connect(&args.addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {}: {e}", args.addr);
        std::process::exit(1);
    });
    let info = client.info().unwrap_or_else(|e| {
        eprintln!("error: info request failed: {e}");
        std::process::exit(1);
    });
    let numel = (info.in_channels * info.grid[0] * info.grid[1] * info.grid[2]) as usize;
    eprintln!(
        "server: {} params, {} trained steps, grid {:?}, patch numel {numel}",
        info.param_count, info.trained_steps, info.grid
    );

    // Phase 1+2: encode-miss vs cache-hit latency, single connection.
    let mut miss_us = Vec::new();
    let mut hit_encode_us = Vec::new();
    let mut hit_query_us = Vec::new();
    let mut digests = Vec::new();
    let mut qstate = 0x5EED_u64;
    for idx in 0..args.patches {
        let patch = gen_patch(idx, numel);
        let t0 = Instant::now();
        let (digest, was_hit) = client.encode(1, &patch).unwrap_or_else(|e| {
            eprintln!("error: encode failed: {e}");
            std::process::exit(1);
        });
        let us = t0.elapsed().as_micros() as u64;
        // A warm server (rerun against the same instance) hits immediately;
        // only genuine misses enter the miss distribution.
        if was_hit {
            hit_encode_us.push(us);
        } else {
            miss_us.push(us);
        }
        digests.push(digest);
    }
    for idx in 0..args.patches {
        let patch = gen_patch(idx, numel);
        let t0 = Instant::now();
        let (_, was_hit) = client.encode(1, &patch).expect("re-encode");
        assert!(was_hit, "second encode of identical patch must hit the cache");
        hit_encode_us.push(t0.elapsed().as_micros() as u64);
    }
    for &digest in &digests {
        for _ in 0..8 {
            let qs = gen_queries(&mut qstate, args.queries_per_req);
            let t0 = Instant::now();
            client.query(digest, &qs).expect("warm query");
            hit_query_us.push(t0.elapsed().as_micros() as u64);
        }
    }
    miss_us.sort_unstable();
    hit_encode_us.sort_unstable();
    hit_query_us.sort_unstable();
    let miss_p50 = percentile_us(&miss_us, 0.5);
    let hit_enc_p50 = percentile_us(&hit_encode_us, 0.5);
    let hit_query_p50 = percentile_us(&hit_query_us, 0.5);
    let speedup = miss_p50 as f64 / hit_enc_p50.max(1) as f64;
    eprintln!(
        "encode miss p50 {miss_p50} us | cache-hit encode p50 {hit_enc_p50} us \
         ({speedup:.1}x) | cache-hit query p50 {hit_query_p50} us"
    );

    // Phase 3: multi-threaded sustained load.
    let deadline = Instant::now() + Duration::from_secs(args.duration_s);
    let digests = std::sync::Arc::new(digests);
    let t_start = Instant::now();
    let handles: Vec<_> = (0..args.threads)
        .map(|tid| {
            let addr = args.addr.clone();
            let digests = digests.clone();
            let qn = args.queries_per_req;
            std::thread::spawn(move || {
                let mut requests = 0u64;
                let mut errors = 0u64;
                let mut lat_us = Vec::new();
                let mut state = (tid as u64 + 1) * 0xA5A5_5A5A;
                let mut client = match Client::connect(&addr) {
                    Ok(c) => c,
                    Err(_) => return (0, 1, lat_us),
                };
                while Instant::now() < deadline {
                    let pick = (lcg(&mut state) as usize) % digests.len();
                    let qs = gen_queries(&mut state, qn);
                    let t0 = Instant::now();
                    // 1-in-8 requests exercise the combined encode+query
                    // path; the rest query cached latents by digest.
                    let res = if lcg(&mut state).is_multiple_of(8) {
                        let patch = gen_patch(pick, numel);
                        client.encode_query(1, &patch, &qs).map(|_| ())
                    } else {
                        match client.query(digests[pick], &qs) {
                            // Evicted digest (tiny cache): re-encode and go on.
                            Err(ServeError::Remote { code, .. })
                                if code == mfn_serve::error::code::UNKNOWN_DIGEST =>
                            {
                                let patch = gen_patch(pick, numel);
                                client.encode_query(1, &patch, &qs).map(|_| ())
                            }
                            other => other.map(|_| ()),
                        }
                    };
                    match res {
                        Ok(()) => {
                            requests += 1;
                            lat_us.push(t0.elapsed().as_micros() as u64);
                        }
                        Err(e) => {
                            errors += 1;
                            eprintln!("loadgen thread {tid}: {e}");
                            // Reconnect once; a dropped connection mid-run
                            // otherwise poisons the remaining duration.
                            match Client::connect(&addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                (requests, errors, lat_us)
            })
        })
        .collect();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut lat_us = Vec::new();
    for h in handles {
        let (r, e, mut l) = h.join().expect("loadgen thread");
        requests += r;
        errors += e;
        lat_us.append(&mut l);
    }
    let elapsed = t_start.elapsed().as_secs_f64();
    lat_us.sort_unstable();
    let qps = requests as f64 / elapsed;
    let p50 = percentile_us(&lat_us, 0.5);
    let p90 = percentile_us(&lat_us, 0.9);
    let p99 = percentile_us(&lat_us, 0.99);
    eprintln!(
        "{requests} requests in {elapsed:.1}s = {qps:.0} qps | p50 {p50} us, \
         p90 {p90} us, p99 {p99} us | {errors} errors"
    );

    let json = format!(
        "{{\n  \"schema\": \"mfn-bench/serve/v1\",\n  \"config\": {{\n    \
         \"addr\": \"{addr}\",\n    \"threads\": {threads},\n    \
         \"duration_s\": {duration},\n    \"patches\": {patches},\n    \
         \"queries_per_req\": {qpr}\n  }},\n  \"cache\": {{\n    \
         \"encode_miss_us_p50\": {miss_p50},\n    \
         \"cache_hit_encode_us_p50\": {hit_enc_p50},\n    \
         \"cache_hit_query_us_p50\": {hit_query_p50},\n    \
         \"hit_to_miss_speedup\": {speedup:.2}\n  }},\n  \"load\": {{\n    \
         \"requests\": {requests},\n    \"protocol_errors\": {errors},\n    \
         \"qps\": {qps:.2},\n    \"p50_us\": {p50},\n    \"p90_us\": {p90},\n    \
         \"p99_us\": {p99}\n  }},\n  \"server\": {{\n    \
         \"param_count\": {params},\n    \"trained_steps\": {steps}\n  }}\n}}\n",
        addr = args.addr,
        threads = args.threads,
        duration = args.duration_s,
        patches = args.patches,
        qpr = args.queries_per_req,
        params = info.param_count,
        steps = info.trained_steps,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    print!("{json}");
    let _ = std::io::stdout().flush();
    eprintln!("wrote {}", args.out.display());

    if args.strict && (requests == 0 || errors > 0) {
        eprintln!(
            "STRICT FAILURE: requests = {requests}, protocol_errors = {errors} \
             (need requests > 0 and zero errors)"
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(offered: f64, achieved: f64, p99_us: u64) -> RatePoint {
        RatePoint {
            offered_qps: offered,
            achieved_qps: achieved,
            requests: achieved as u64,
            errors: 0,
            p50_us: p99_us / 4,
            p90_us: p99_us / 2,
            p99_us,
            max_us: p99_us * 2,
        }
    }

    #[test]
    fn knee_is_highest_throughput_under_slo() {
        // Classic saturation curve: throughput keeps inching up past the
        // knee while p99 explodes. Raw max-achieved would pick index 3.
        let sweep = [
            pt(500.0, 499.0, 2_000),
            pt(1000.0, 998.0, 8_000),
            pt(1750.0, 1700.0, 45_000),
            pt(2500.0, 1800.0, 900_000),
        ];
        assert_eq!(pick_knee(&sweep, 50_000), (2, true));
    }

    #[test]
    fn knee_ignores_offered_order() {
        // The under-SLO pick keys on achieved QPS, not position or offered
        // rate — a mid-sweep point can win if later ones collapse.
        let sweep =
            [pt(1000.0, 990.0, 10_000), pt(2000.0, 1500.0, 30_000), pt(3000.0, 1200.0, 40_000)];
        assert_eq!(pick_knee(&sweep, 50_000), (1, true));
    }

    #[test]
    fn knee_boundary_is_inclusive() {
        let sweep = [pt(100.0, 99.0, 50_000)];
        assert_eq!(pick_knee(&sweep, 50_000), (0, true));
        assert!(!pick_knee(&sweep, 49_999).1);
    }

    #[test]
    fn all_points_over_slo_falls_back_to_lowest_p99() {
        let sweep =
            [pt(1000.0, 900.0, 300_000), pt(2000.0, 1100.0, 200_000), pt(3000.0, 1300.0, 400_000)];
        assert_eq!(pick_knee(&sweep, 50_000), (1, false));
    }

    #[test]
    fn fallback_tie_prefers_higher_throughput() {
        let sweep = [pt(1000.0, 900.0, 200_000), pt(2000.0, 1500.0, 200_000)];
        assert_eq!(pick_knee(&sweep, 50_000), (1, false));
    }
}
