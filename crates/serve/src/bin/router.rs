//! `router` — front a fleet of `serve` shards with digest-affine routing.
//!
//! ```text
//! usage: router --shards ADDR,ADDR,... [--addr HOST:PORT] [--vnodes N]
//!               [--health-interval-ms N] [--fail-threshold N]
//!               [--timeout-ms N] [--duration-s N]
//! ```
//!
//! Every shard must serve the *same* checkpoint: the ring assigns each
//! patch digest to one shard, so a patch is encoded once fleet-wide and all
//! queries against it hit that shard's latent cache. Prints
//! `routing on ADDR (N shards)` once ready — smoke scripts wait for this
//! exact line. With `--duration-s N` the router exits after N seconds;
//! otherwise it routes until killed.

use mfn_serve::{Router, RouterConfig};
use std::time::Duration;

struct Args {
    addr: String,
    shards: Vec<String>,
    vnodes: usize,
    health_interval_ms: u64,
    fail_threshold: u32,
    timeout_ms: u64,
    duration_s: u64,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: router --shards ADDR,ADDR,... [--addr HOST:PORT] \
                 [--vnodes N] [--health-interval-ms N] [--fail-threshold N] \
                 [--timeout-ms N] [--duration-s N]";
    let mut addr = "127.0.0.1:7070".to_string();
    let mut shards: Vec<String> = Vec::new();
    let mut vnodes = mfn_serve::ring::DEFAULT_VNODES;
    let mut health_interval_ms = 200u64;
    let mut fail_threshold = 2u32;
    let mut timeout_ms = 5000u64;
    let mut duration_s = 0u64;
    let mut i = 0;
    let next = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {what} needs a value\n{usage}");
                std::process::exit(2);
            })
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => addr = next(&argv, &mut i, "--addr"),
            "--shards" => {
                shards = next(&argv, &mut i, "--shards")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--vnodes" => vnodes = next(&argv, &mut i, "--vnodes").parse().expect("integer"),
            "--health-interval-ms" => {
                health_interval_ms =
                    next(&argv, &mut i, "--health-interval-ms").parse().expect("integer")
            }
            "--fail-threshold" => {
                fail_threshold = next(&argv, &mut i, "--fail-threshold").parse().expect("integer")
            }
            "--timeout-ms" => {
                timeout_ms = next(&argv, &mut i, "--timeout-ms").parse().expect("integer")
            }
            "--duration-s" => {
                duration_s = next(&argv, &mut i, "--duration-s").parse().expect("integer")
            }
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if shards.is_empty() {
        eprintln!("error: --shards is required\n{usage}");
        std::process::exit(2);
    }
    Args { addr, shards, vnodes, health_interval_ms, fail_threshold, timeout_ms, duration_s }
}

fn main() {
    let args = parse();
    let n = args.shards.len();
    let router = Router::start(RouterConfig {
        addr: args.addr.clone(),
        shards: args.shards,
        vnodes: args.vnodes,
        health_interval: Duration::from_millis(args.health_interval_ms),
        fail_threshold: args.fail_threshold,
        request_timeout: Duration::from_millis(args.timeout_ms),
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    // Smoke scripts wait for this exact line.
    println!("routing on {} ({n} shards)", router.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if args.duration_s > 0 {
        std::thread::sleep(Duration::from_secs(args.duration_s));
        eprintln!("duration elapsed, stopping ...");
        router.shutdown();
    } else {
        loop {
            std::thread::park();
        }
    }
}
