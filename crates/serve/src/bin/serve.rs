//! `serve` — load a train-state checkpoint and answer continuous queries
//! over TCP.
//!
//! ```text
//! usage: serve --ckpt PATH.state [--config PATH.cfg.json] [--addr HOST:PORT]
//!              [--cache-cap N] [--batch-max N] [--batch-wait-us N]
//!              [--workers N] [--timeout-ms N] [--telemetry PATH]
//!              [--duration-s N] [--bf16-decode] [--bf16-compute] [--refine]
//! ```
//!
//! `--ckpt` names an `MFNSTAT1` train-state file (as written by `train
//! --checkpoint-every`); only parameters and BN statistics are loaded — the
//! Adam moments are never materialized. The architecture comes from the
//! JSON sidecar `train` writes next to the model checkpoint; by default it
//! is derived from the state path (`model.ckpt.state` → `model.ckpt.cfg.json`).
//! Prints `listening on ADDR` once ready. With `--duration-s N` the server
//! drains gracefully after N seconds (for CI smoke runs); otherwise it
//! serves until killed.

use mfn_core::{FrozenModel, MfnConfig, RefineSettings};
use mfn_serve::{Engine, EngineConfig, Server, ServerConfig};
use mfn_telemetry::Recorder;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    ckpt: PathBuf,
    config: Option<PathBuf>,
    addr: String,
    cache_cap: usize,
    batch_max: usize,
    batch_wait_us: u64,
    workers: usize,
    timeout_ms: u64,
    telemetry: Option<PathBuf>,
    duration_s: u64,
    bf16_decode: bool,
    bf16_compute: bool,
    refine: bool,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: serve --ckpt PATH.state [--config PATH.cfg.json] \
                 [--addr HOST:PORT] [--cache-cap N] [--batch-max N] \
                 [--batch-wait-us N] [--workers N] [--timeout-ms N] \
                 [--telemetry PATH] [--duration-s N] [--bf16-decode] \
                 [--bf16-compute] [--refine]";
    let mut ckpt = None;
    let mut config = None;
    let mut addr = "127.0.0.1:7077".to_string();
    let mut cache_cap = 64usize;
    let mut batch_max = 256usize;
    let mut batch_wait_us = 200u64;
    let mut workers = 4usize;
    let mut timeout_ms = 2000u64;
    let mut telemetry = None;
    let mut duration_s = 0u64;
    let mut bf16_decode = false;
    let mut bf16_compute = false;
    let mut refine = false;
    let mut i = 0;
    let next = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {what} needs a value\n{usage}");
                std::process::exit(2);
            })
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--ckpt" => ckpt = Some(PathBuf::from(next(&argv, &mut i, "--ckpt"))),
            "--config" => config = Some(PathBuf::from(next(&argv, &mut i, "--config"))),
            "--addr" => addr = next(&argv, &mut i, "--addr"),
            "--cache-cap" => {
                cache_cap = next(&argv, &mut i, "--cache-cap").parse().expect("integer")
            }
            "--batch-max" => {
                batch_max = next(&argv, &mut i, "--batch-max").parse().expect("integer")
            }
            "--batch-wait-us" => {
                batch_wait_us = next(&argv, &mut i, "--batch-wait-us").parse().expect("integer")
            }
            "--workers" => workers = next(&argv, &mut i, "--workers").parse().expect("integer"),
            "--timeout-ms" => {
                timeout_ms = next(&argv, &mut i, "--timeout-ms").parse().expect("integer")
            }
            "--telemetry" => telemetry = Some(PathBuf::from(next(&argv, &mut i, "--telemetry"))),
            "--duration-s" => {
                duration_s = next(&argv, &mut i, "--duration-s").parse().expect("integer")
            }
            "--bf16-decode" => bf16_decode = true,
            "--bf16-compute" => bf16_compute = true,
            "--refine" => refine = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let missing = |what: &str| -> ! {
        eprintln!("error: {what} is required\n{usage}");
        std::process::exit(2);
    };
    Args {
        ckpt: ckpt.unwrap_or_else(|| missing("--ckpt")),
        config,
        addr,
        cache_cap,
        batch_max,
        batch_wait_us,
        workers,
        timeout_ms,
        telemetry,
        duration_s,
        bf16_decode,
        bf16_compute,
        refine,
    }
}

/// `model.ckpt.state` → `model.ckpt.cfg.json` (matches what `train` writes).
fn default_config_path(ckpt: &std::path::Path) -> PathBuf {
    let s = ckpt.to_string_lossy();
    let base = s.strip_suffix(".state").unwrap_or(&s);
    PathBuf::from(format!("{base}.cfg.json"))
}

fn main() {
    let args = parse();
    let cfg_path = args.config.clone().unwrap_or_else(|| default_config_path(&args.ckpt));
    let cfg = MfnConfig::load_json(&cfg_path).unwrap_or_else(|e| {
        eprintln!("error: cannot load model config {}: {e}", cfg_path.display());
        std::process::exit(1);
    });
    let model = FrozenModel::load_state(cfg, &args.ckpt).unwrap_or_else(|e| {
        eprintln!("error: cannot load checkpoint {}: {e}", args.ckpt.display());
        std::process::exit(1);
    });
    eprintln!(
        "loaded {} ({} params, {} trained steps, grid {:?})",
        args.ckpt.display(),
        model.param_count(),
        model.trained_steps(),
        model.grid_dims(),
    );
    let refine = args.refine.then(|| RefineSettings::from_config(model.cfg()));
    let engine = Arc::new(Engine::new(
        model,
        EngineConfig {
            cache_capacity: args.cache_cap,
            max_batch: args.batch_max,
            max_wait: Duration::from_micros(args.batch_wait_us),
            bf16_decode: args.bf16_decode,
            bf16_compute: args.bf16_compute,
            refine,
        },
    ));
    if args.refine {
        eprintln!("test-time physics refinement enabled");
    }
    if args.bf16_decode || args.bf16_compute {
        eprintln!(
            "decode tier {} ({} quantized weight bytes, native bf16 compute: {})",
            engine.model().decode_tier().name(),
            engine.model().quantized_weight_bytes(),
            mfn_tensor::bf16_compute_is_native(),
        );
    }
    let recorder = match &args.telemetry {
        Some(path) => {
            let r = Recorder::jsonl(path).expect("create telemetry file");
            eprintln!("telemetry -> {}", path.display());
            r
        }
        None => Recorder::null(),
    };
    let server = Server::start(
        engine.clone(),
        ServerConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            request_timeout: Duration::from_millis(args.timeout_ms),
            ..ServerConfig::default()
        },
        recorder,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    // Load generators and smoke scripts wait for this exact line.
    println!("listening on {}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    if args.duration_s > 0 {
        std::thread::sleep(Duration::from_secs(args.duration_s));
        eprintln!("duration elapsed, draining ...");
        server.shutdown();
        let stats = engine.stats();
        eprintln!(
            "served {} requests ({} errors), {} queries, cache {}/{} hit/miss",
            stats.requests(),
            stats.errors(),
            stats.queries(),
            engine.cache().hits(),
            engine.cache().misses(),
        );
    } else {
        // Serve until the process is killed.
        loop {
            std::thread::park();
        }
    }
}
