//! The length-prefixed binary wire protocol.
//!
//! Every message is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic           b"MFNS"
//! 4       1     version         1
//! 5       1     kind            request/response discriminant
//! 6       2     reserved        must be 0
//! 8       4     payload_len     u32 LE, <= MAX_PAYLOAD (16 MiB)
//! 12      n     payload         kind-specific, all integers/floats LE
//! ```
//!
//! Response kinds are the request kind with the high bit set; `0xFF` is the
//! error frame (`code: u16 LE` + UTF-8 message). A server reads frames off a
//! blocking stream; any header violation produces a typed [`ServeError`]
//! *before* the payload is touched, so a hostile 4 GiB length prefix costs
//! nothing. Payload decoding is bounds-checked cursor reads — malformed
//! payloads are rejected, never panicked on.

use crate::error::ServeError;
use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"MFNS";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Frame header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Maximum payload size (16 MiB) — caps memory a frame can demand.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds. Requests are `0x01..=0x07`; each response is the request
/// kind with the high bit set; `0xFF` is the error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Kind {
    /// Liveness probe (empty payload).
    Ping = 0x01,
    /// Model metadata request (empty payload).
    Info = 0x02,
    /// Encode a patch: `batch: u32`, then `batch·C·nt·nz·nx` f32s.
    Encode = 0x03,
    /// Query a cached latent: `digest: u64`, `count: u32`, then per query
    /// `batch: u32, t: f32, z: f32, x: f32`.
    Query = 0x04,
    /// Encode + query in one round trip (Encode payload ++ Query payload
    /// without the digest).
    EncodeQuery = 0x05,
    /// Serving statistics request (empty payload). A shard answers with one
    /// [`ShardStat`]; a router answers with one per healthy shard.
    Stats = 0x06,
    /// Test-time physics refinement of a cached latent: `digest: u64`,
    /// `max_steps: u32`, `tol: f32`, `max_micros: u64`, `count: u32`, then
    /// per query `batch: u32, t: f32, z: f32, x: f32`. The digest leads the
    /// payload so a router shards Refine by the same first-8-bytes rule as
    /// [`Kind::Query`].
    Refine = 0x07,
    /// Response to [`Kind::Ping`] (empty payload).
    Pong = 0x81,
    /// Response to [`Kind::Info`]: a [`ModelInfo`].
    InfoResp = 0x82,
    /// Response to [`Kind::Encode`]: `digest: u64`, `cache_hit: u8`.
    EncodeResp = 0x83,
    /// Response to [`Kind::Query`] / [`Kind::EncodeQuery`]: `digest: u64`,
    /// `cache_hit: u8`, `count: u32`, `channels: u32`, then
    /// `count·channels` f32s.
    QueryResp = 0x84,
    /// Response to [`Kind::Stats`]: `count: u32`, then `count`
    /// [`ShardStat`]s.
    StatsResp = 0x86,
    /// Response to [`Kind::Refine`]: `digest: u64`, `steps_run: u32`,
    /// `steps_accepted: u32`, `initial_residual: f32`, `final_residual: f32`,
    /// `count: u32`, `channels: u32`, then `count·channels` f32s.
    RefineResp = 0x87,
    /// Error frame: `code: u16`, then a UTF-8 message.
    Error = 0xFF,
}

impl Kind {
    /// Decodes a kind byte, distinguishing "unknown" from the valid set.
    pub fn from_u8(b: u8) -> Option<Kind> {
        match b {
            0x01 => Some(Kind::Ping),
            0x02 => Some(Kind::Info),
            0x03 => Some(Kind::Encode),
            0x04 => Some(Kind::Query),
            0x05 => Some(Kind::EncodeQuery),
            0x06 => Some(Kind::Stats),
            0x07 => Some(Kind::Refine),
            0x81 => Some(Kind::Pong),
            0x82 => Some(Kind::InfoResp),
            0x83 => Some(Kind::EncodeResp),
            0x84 => Some(Kind::QueryResp),
            0x86 => Some(Kind::StatsResp),
            0x87 => Some(Kind::RefineResp),
            0xFF => Some(Kind::Error),
            _ => None,
        }
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, kind: Kind, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() as u64 <= MAX_PAYLOAD as u64, "frame payload over cap");
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4] = VERSION;
    header[5] = kind as u8;
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, validating the header before allocating for the
/// payload. Returns `Ok(None)` on a clean EOF at a frame boundary (the peer
/// closed between requests — not an error).
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
    let mut header = [0u8; HEADER_LEN];
    // A clean close before any header byte is a normal end of conversation;
    // EOF after the first byte is a truncated frame.
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 { Ok(None) } else { Err(ServeError::Truncated) };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServeError::from_io(&e)),
        }
    }
    if header[0..4] != MAGIC {
        return Err(ServeError::BadMagic);
    }
    if header[4] != VERSION {
        return Err(ServeError::BadVersion { got: header[4] });
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(ServeError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| ServeError::from_io(&e))?;
    Ok(Some((header[5], payload)))
}

/// Incremental frame decoder for nonblocking streams.
///
/// [`read_frame`] assumes it can block until a whole frame arrives; a
/// readiness-loop server instead gets bytes in arbitrary slices across poll
/// wakeups. The decoder buffers whatever arrives and yields complete frames
/// as they form. Header validation happens the moment 12 bytes are buffered
/// — a hostile length prefix is rejected *before* any payload allocation,
/// exactly as in the blocking path.
///
/// After any `Err` the stream is desynced and the decoder refuses further
/// input; the caller answers with the typed error frame and closes.
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by yielded frames.
    pos: usize,
    /// Validated header of the frame currently being assembled.
    pending: Option<(u8, usize)>,
    /// Set once a header violation is seen; the stream is unrecoverable.
    poisoned: bool,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// An empty decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder { buf: Vec::new(), pos: 0, pending: None, poisoned: false }
    }

    /// Appends bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        // Reclaim consumed prefix before growing — keeps the buffer bounded
        // by one frame plus one read's worth of bytes.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Yields the next complete frame, `Ok(None)` if more bytes are needed,
    /// or a typed header error (after which the decoder is poisoned).
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
        if self.poisoned {
            return Ok(None);
        }
        let (kind, len) = match self.pending {
            Some(h) => h,
            None => {
                let avail = self.buf.len() - self.pos;
                if avail < HEADER_LEN {
                    return Ok(None);
                }
                let h = &self.buf[self.pos..self.pos + HEADER_LEN];
                if h[0..4] != MAGIC {
                    self.poisoned = true;
                    return Err(ServeError::BadMagic);
                }
                if h[4] != VERSION {
                    self.poisoned = true;
                    return Err(ServeError::BadVersion { got: h[4] });
                }
                let len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]);
                if len > MAX_PAYLOAD {
                    self.poisoned = true;
                    return Err(ServeError::Oversized { len });
                }
                let header = (h[5], len as usize);
                self.pos += HEADER_LEN;
                self.pending = Some(header);
                header
            }
        };
        if self.buf.len() - self.pos < len {
            return Ok(None);
        }
        let payload = self.buf[self.pos..self.pos + len].to_vec();
        self.pos += len;
        self.pending = None;
        Ok(Some((kind, payload)))
    }

    /// Whether a frame has started but not finished (stall-timeout basis).
    pub fn mid_frame(&self) -> bool {
        !self.poisoned && (self.pending.is_some() || self.buf.len() - self.pos > 0)
    }

    /// Whether a header violation permanently desynced this stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Writes an error frame carrying `err`'s wire code and display message.
pub fn write_error(w: &mut impl Write, err: &ServeError) -> std::io::Result<()> {
    let msg = err.to_string();
    let mut payload = Vec::with_capacity(2 + msg.len());
    payload.extend_from_slice(&err.code().to_le_bytes());
    payload.extend_from_slice(msg.as_bytes());
    write_frame(w, Kind::Error, &payload)
}

/// Decodes an error frame payload into a client-side [`ServeError::Remote`].
pub fn decode_error(payload: &[u8]) -> ServeError {
    if payload.len() < 2 {
        return ServeError::BadPayload("error frame shorter than its code".into());
    }
    let code = u16::from_le_bytes([payload[0], payload[1]]);
    let message = String::from_utf8_lossy(&payload[2..]).into_owned();
    ServeError::Remote { code, message }
}

/// Model metadata returned by [`Kind::Info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelInfo {
    /// Input physical channels.
    pub in_channels: u32,
    /// Output physical channels.
    pub out_channels: u32,
    /// Latent grid vertex dims `[nt, nz, nx]`.
    pub grid: [u32; 3],
    /// Latent vector width `n_c`.
    pub latent_channels: u32,
    /// Total scalar parameter count.
    pub param_count: u64,
    /// Gradient steps the served checkpoint had taken.
    pub trained_steps: u64,
    /// Precision tier answering value decodes
    /// ([`mfn_core::DecodeTier::as_u8`]): 0 = f32, 1 = bf16-store,
    /// 2 = bf16-compute. Carried as the raw byte so a client can still
    /// print stats from a newer shard.
    pub decode_tier: u8,
}

impl ModelInfo {
    /// Serializes to the InfoResp payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(41);
        for v in [
            self.in_channels,
            self.out_channels,
            self.grid[0],
            self.grid[1],
            self.grid[2],
            self.latent_channels,
        ] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p.extend_from_slice(&self.param_count.to_le_bytes());
        p.extend_from_slice(&self.trained_steps.to_le_bytes());
        p.push(self.decode_tier);
        p
    }

    /// Parses an InfoResp payload.
    pub fn decode(payload: &[u8]) -> Result<ModelInfo, ServeError> {
        let mut c = Cursor::new(payload);
        let info = ModelInfo {
            in_channels: c.u32()?,
            out_channels: c.u32()?,
            grid: [c.u32()?, c.u32()?, c.u32()?],
            latent_channels: c.u32()?,
            param_count: c.u64()?,
            trained_steps: c.u64()?,
            decode_tier: c.u8()?,
        };
        c.finish()?;
        Ok(info)
    }
}

/// Per-shard serving statistics returned by [`Kind::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStat {
    /// The shard's listen address (as configured, not as resolved).
    pub addr: String,
    /// Completed requests.
    pub requests: u64,
    /// Requests that ended in a typed error.
    pub errors: u64,
    /// Requests currently in flight.
    pub inflight: u64,
    /// Latent-cache hits.
    pub cache_hits: u64,
    /// Latent-cache misses.
    pub cache_misses: u64,
    /// Detected digest collisions.
    pub cache_collisions: u64,
    /// Latents currently cached.
    pub cache_len: u64,
    /// Decode invocations (micro-batches run).
    pub decode_calls: u64,
    /// Query points decoded across all batches.
    pub batched_queries: u64,
    /// Precision tier answering this shard's value decodes (same encoding
    /// as [`ModelInfo::decode_tier`]) — lets fleet tooling catch a mixed
    /// f32/bf16 fleet instead of silently comparing across contracts.
    pub decode_tier: u8,
}

impl ShardStat {
    /// Appends this stat's wire form to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.addr.len() as u32).to_le_bytes());
        out.extend_from_slice(self.addr.as_bytes());
        for v in [
            self.requests,
            self.errors,
            self.inflight,
            self.cache_hits,
            self.cache_misses,
            self.cache_collisions,
            self.cache_len,
            self.decode_calls,
            self.batched_queries,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.push(self.decode_tier);
    }

    /// Reads one stat from a cursor.
    pub fn decode_from(c: &mut Cursor<'_>) -> Result<ShardStat, ServeError> {
        let n = c.u32()? as usize;
        let addr = String::from_utf8(c.bytes(n)?.to_vec())
            .map_err(|_| ServeError::BadPayload("shard address is not UTF-8".into()))?;
        Ok(ShardStat {
            addr,
            requests: c.u64()?,
            errors: c.u64()?,
            inflight: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            cache_collisions: c.u64()?,
            cache_len: c.u64()?,
            decode_calls: c.u64()?,
            batched_queries: c.u64()?,
            decode_tier: c.u8()?,
        })
    }
}

/// Serializes a StatsResp payload (`count: u32` then the stats).
pub fn encode_stats(stats: &[ShardStat]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + stats.len() * 96);
    p.extend_from_slice(&(stats.len() as u32).to_le_bytes());
    for s in stats {
        s.encode_into(&mut p);
    }
    p
}

/// Parses a StatsResp payload.
pub fn decode_stats(payload: &[u8]) -> Result<Vec<ShardStat>, ServeError> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut stats = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        stats.push(ShardStat::decode_from(&mut c)?);
    }
    c.finish()?;
    Ok(stats)
}

/// Bounds-checked little-endian payload reader. Every read either yields a
/// value or a typed [`ServeError::BadPayload`] — no slicing panics.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload for sequential decoding.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
            ServeError::BadPayload(format!(
                "payload ends at byte {} but {} more needed",
                self.bytes.len(),
                self.pos + n - self.bytes.len(),
            ))
        })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, ServeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ServeError> {
        self.take(n)
    }

    /// Reads a LE `u32`.
    pub fn u32(&mut self) -> Result<u32, ServeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a LE `u64`.
    pub fn u64(&mut self) -> Result<u64, ServeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a LE `f32`.
    pub fn f32(&mut self) -> Result<f32, ServeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads `count` LE `f32`s.
    pub fn f32s(&mut self, count: usize) -> Result<Vec<f32>, ServeError> {
        let b = self.take(
            count
                .checked_mul(4)
                .ok_or_else(|| ServeError::BadPayload("f32 count overflows".into()))?,
        )?;
        Ok(b.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Asserts the payload was fully consumed (trailing bytes = malformed).
    pub fn finish(&self) -> Result<(), ServeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ServeError::BadPayload(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Appends `values` as LE `f32`s to `out`.
pub fn put_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Kind::Encode, &[1, 2, 3]).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + 3);
        let (kind, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(Kind::from_u8(kind), Some(Kind::Encode));
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn clean_eof_is_none_mid_header_is_truncated() {
        assert!(matches!(read_frame(&mut (&[] as &[u8])), Ok(None)));
        let mut buf = Vec::new();
        write_frame(&mut buf, Kind::Ping, &[]).unwrap();
        buf.truncate(5);
        assert_eq!(read_frame(&mut buf.as_slice()), Err(ServeError::Truncated));
    }

    #[test]
    fn header_violations_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, Kind::Ping, &[]).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert_eq!(read_frame(&mut bad_magic.as_slice()), Err(ServeError::BadMagic));
        let mut bad_version = buf.clone();
        bad_version[4] = 9;
        assert_eq!(read_frame(&mut bad_version.as_slice()), Err(ServeError::BadVersion { got: 9 }));
        let mut oversized = buf.clone();
        oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&mut oversized.as_slice()),
            Err(ServeError::Oversized { len: u32::MAX })
        );
    }

    #[test]
    fn error_frame_roundtrip() {
        let mut buf = Vec::new();
        write_error(&mut buf, &ServeError::UnknownDigest(7)).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(Kind::from_u8(kind), Some(Kind::Error));
        let err = decode_error(&payload);
        assert_eq!(err.code(), crate::error::code::UNKNOWN_DIGEST);
    }

    #[test]
    fn model_info_roundtrip() {
        let info = ModelInfo {
            in_channels: 4,
            out_channels: 4,
            grid: [4, 16, 16],
            latent_channels: 32,
            param_count: 123_456,
            trained_steps: 789,
            decode_tier: 2,
        };
        assert_eq!(ModelInfo::decode(&info.encode()).unwrap(), info);
        // The tier byte is mandatory: a payload without it is rejected, and
        // trailing bytes beyond it still trip the strict finish.
        let enc = info.encode();
        assert!(ModelInfo::decode(&enc[..enc.len() - 1]).is_err());
        let mut long = enc.clone();
        long.push(0);
        assert!(ModelInfo::decode(&long).is_err());
    }

    #[test]
    fn decoder_yields_frames_across_arbitrary_splits() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Encode, &[1, 2, 3]).unwrap();
        write_frame(&mut wire, Kind::Ping, &[]).unwrap();
        // Feed one byte at a time: the worst fragmentation a poll loop sees.
        let mut d = FrameDecoder::new();
        let mut frames = Vec::new();
        for &b in &wire {
            d.extend(&[b]);
            while let Some(f) = d.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], (Kind::Encode as u8, vec![1, 2, 3]));
        assert_eq!(frames[1], (Kind::Ping as u8, Vec::new()));
        assert!(!d.mid_frame());
    }

    #[test]
    fn decoder_rejects_bad_headers_then_poisons() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Ping, &[]).unwrap();
        wire[0] = b'X';
        let mut d = FrameDecoder::new();
        d.extend(&wire);
        assert_eq!(d.next_frame(), Err(ServeError::BadMagic));
        assert!(d.is_poisoned());
        // Poisoned decoders swallow further input instead of resyncing on
        // garbage mid-stream.
        d.extend(&wire);
        assert_eq!(d.next_frame(), Ok(None));

        let mut oversized = Vec::new();
        write_frame(&mut oversized, Kind::Ping, &[]).unwrap();
        oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d2 = FrameDecoder::new();
        d2.extend(&oversized);
        assert_eq!(d2.next_frame(), Err(ServeError::Oversized { len: u32::MAX }));
    }

    #[test]
    fn decoder_tracks_mid_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, Kind::Encode, &[0u8; 32]).unwrap();
        let mut d = FrameDecoder::new();
        assert!(!d.mid_frame());
        d.extend(&wire[..5]);
        assert!(d.mid_frame(), "partial header is mid-frame");
        d.extend(&wire[5..20]);
        assert!(d.next_frame().unwrap().is_none());
        assert!(d.mid_frame(), "partial payload is mid-frame");
        d.extend(&wire[20..]);
        assert!(d.next_frame().unwrap().is_some());
        assert!(!d.mid_frame());
    }

    #[test]
    fn shard_stats_roundtrip() {
        let stats = vec![
            ShardStat {
                addr: "127.0.0.1:7077".into(),
                requests: 10,
                errors: 1,
                inflight: 2,
                cache_hits: 7,
                cache_misses: 3,
                cache_collisions: 0,
                cache_len: 3,
                decode_calls: 5,
                batched_queries: 320,
                decode_tier: 1,
            },
            ShardStat {
                addr: "127.0.0.1:7078".into(),
                requests: 0,
                errors: 0,
                inflight: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_collisions: 0,
                cache_len: 0,
                decode_calls: 0,
                batched_queries: 0,
                decode_tier: 0,
            },
        ];
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);
        assert!(decode_stats(&[1, 0]).is_err(), "truncated stats payload must not panic");
    }

    #[test]
    fn cursor_rejects_overrun_and_trailing() {
        let mut c = Cursor::new(&[1, 0, 0, 0]);
        assert_eq!(c.u32().unwrap(), 1);
        assert!(matches!(c.u32(), Err(ServeError::BadPayload(_))));
        let c2 = Cursor::new(&[0u8; 5]);
        assert!(matches!(c2.finish(), Err(ServeError::BadPayload(_))));
    }
}
