//! Typed serving errors with stable wire codes.
//!
//! Every failure a client can observe has a numeric code that travels in the
//! protocol's error frame (see [`crate::protocol`]); the server never panics
//! on malformed input and never closes a connection without first attempting
//! to write one of these. Codes are append-only: new variants take fresh
//! numbers, existing numbers never change meaning.

use std::fmt;

/// Stable wire codes for [`ServeError`].
pub mod code {
    /// Frame did not start with the protocol magic.
    pub const BAD_MAGIC: u16 = 1;
    /// Unsupported protocol version.
    pub const BAD_VERSION: u16 = 2;
    /// Declared payload length exceeds the frame cap.
    pub const OVERSIZED: u16 = 3;
    /// Stream ended mid-frame.
    pub const TRUNCATED: u16 = 4;
    /// Unrecognized frame kind byte.
    pub const UNKNOWN_KIND: u16 = 5;
    /// Payload failed structural decoding.
    pub const BAD_PAYLOAD: u16 = 6;
    /// Payload decoded but its shape contradicts the model.
    pub const SHAPE_MISMATCH: u16 = 7;
    /// Query referenced a latent digest not present in the cache.
    pub const UNKNOWN_DIGEST: u16 = 8;
    /// Connection backlog full; retry later.
    pub const BUSY: u16 = 9;
    /// Server is draining and no longer accepts new requests.
    pub const SHUTTING_DOWN: u16 = 10;
    /// Request exceeded the per-request deadline.
    pub const TIMEOUT: u16 = 11;
    /// Unexpected server-side failure.
    pub const INTERNAL: u16 = 12;
    /// Encode found a cached latent under this digest that was built from
    /// *different* patch bytes (a 64-bit digest collision).
    pub const DIGEST_COLLISION: u16 = 13;
    /// A router could not find any healthy shard to forward the request to.
    pub const NO_HEALTHY_SHARD: u16 = 14;
    /// Refinement budget rejected (absurd step count, non-finite tolerance,
    /// or over the server's per-request compute caps).
    pub const BAD_BUDGET: u16 = 15;
    /// Refinement requested but the server was started without `--refine`.
    pub const REFINE_DISABLED: u16 = 16;
}

/// Everything that can go wrong between a client request and its response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Frame did not start with `b"MFNS"`.
    BadMagic,
    /// Frame declared an unsupported protocol version.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// Declared payload length exceeds [`crate::protocol::MAX_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// Stream ended before a complete frame arrived.
    Truncated,
    /// Frame kind byte is not a known request/response kind.
    UnknownKind {
        /// The kind byte received.
        kind: u8,
    },
    /// Payload bytes failed structural decoding.
    BadPayload(String),
    /// Payload decoded but contradicts the model (channel count, patch
    /// dims, batch index out of range, non-finite coordinate, …).
    ShapeMismatch(String),
    /// The queried latent digest is not (or no longer) cached.
    UnknownDigest(u64),
    /// The submitted patch hashes to a digest already owned by a cached
    /// latent with different bytes. The digest namespace is occupied, so
    /// this patch cannot be addressed over the wire; the client must not
    /// be served the colliding latent.
    DigestCollision(u64),
    /// The server's connection backlog is full.
    Busy,
    /// The server is draining connections for shutdown.
    ShuttingDown,
    /// The request ran past its deadline.
    Timeout,
    /// Unexpected server-side failure (worker panic, I/O error, …).
    Internal(String),
    /// No healthy shard is available to serve this request (router-only).
    NoHealthyShard,
    /// The refinement budget is invalid or exceeds the server's caps. The
    /// message says which field and which cap; the request never starts, so
    /// an absurd budget can never buy unbounded compute.
    BadBudget(String),
    /// Refinement is not enabled on this server.
    RefineDisabled,
    /// Client-side view of an error frame received from the server.
    Remote {
        /// The wire code from the error frame.
        code: u16,
        /// The server's human-readable message.
        message: String,
    },
}

impl ServeError {
    /// The stable wire code for this error. For [`ServeError::Remote`] this
    /// is the code the server sent, so client-side tests can match on the
    /// original failure without caring where it was detected.
    pub fn code(&self) -> u16 {
        match self {
            ServeError::BadMagic => code::BAD_MAGIC,
            ServeError::BadVersion { .. } => code::BAD_VERSION,
            ServeError::Oversized { .. } => code::OVERSIZED,
            ServeError::Truncated => code::TRUNCATED,
            ServeError::UnknownKind { .. } => code::UNKNOWN_KIND,
            ServeError::BadPayload(_) => code::BAD_PAYLOAD,
            ServeError::ShapeMismatch(_) => code::SHAPE_MISMATCH,
            ServeError::UnknownDigest(_) => code::UNKNOWN_DIGEST,
            ServeError::DigestCollision(_) => code::DIGEST_COLLISION,
            ServeError::Busy => code::BUSY,
            ServeError::ShuttingDown => code::SHUTTING_DOWN,
            ServeError::Timeout => code::TIMEOUT,
            ServeError::Internal(_) => code::INTERNAL,
            ServeError::NoHealthyShard => code::NO_HEALTHY_SHARD,
            ServeError::BadBudget(_) => code::BAD_BUDGET,
            ServeError::RefineDisabled => code::REFINE_DISABLED,
            ServeError::Remote { code, .. } => *code,
        }
    }

    /// Maps an I/O error seen while reading/writing frames to the typed
    /// error a peer should be told about (where possible).
    pub fn from_io(e: &std::io::Error) -> ServeError {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::UnexpectedEof | ErrorKind::ConnectionReset | ErrorKind::BrokenPipe => {
                ServeError::Truncated
            }
            ErrorKind::TimedOut | ErrorKind::WouldBlock => ServeError::Timeout,
            _ => ServeError::Internal(e.to_string()),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadMagic => write!(f, "bad frame magic"),
            ServeError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            ServeError::Oversized { len } => write!(f, "payload length {len} exceeds frame cap"),
            ServeError::Truncated => write!(f, "stream ended mid-frame"),
            ServeError::UnknownKind { kind } => write!(f, "unknown frame kind {kind:#04x}"),
            ServeError::BadPayload(m) => write!(f, "bad payload: {m}"),
            ServeError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            ServeError::UnknownDigest(d) => write!(f, "unknown latent digest {d:#018x}"),
            ServeError::DigestCollision(d) => {
                write!(f, "latent digest {d:#018x} collides with a different cached patch")
            }
            ServeError::Busy => write!(f, "server busy"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Timeout => write!(f, "request timed out"),
            ServeError::Internal(m) => write!(f, "internal error: {m}"),
            ServeError::NoHealthyShard => write!(f, "no healthy shard available"),
            ServeError::BadBudget(m) => write!(f, "bad refine budget: {m}"),
            ServeError::RefineDisabled => write!(f, "refinement not enabled on this server"),
            ServeError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_stable() {
        let all = [
            ServeError::BadMagic,
            ServeError::BadVersion { got: 9 },
            ServeError::Oversized { len: 1 },
            ServeError::Truncated,
            ServeError::UnknownKind { kind: 0x7f },
            ServeError::BadPayload(String::new()),
            ServeError::ShapeMismatch(String::new()),
            ServeError::UnknownDigest(0),
            ServeError::Busy,
            ServeError::ShuttingDown,
            ServeError::Timeout,
            ServeError::Internal(String::new()),
            ServeError::DigestCollision(0),
            ServeError::NoHealthyShard,
            ServeError::BadBudget(String::new()),
            ServeError::RefineDisabled,
        ];
        let codes: Vec<u16> = all.iter().map(ServeError::code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate wire codes");
        assert_eq!(codes, (1..=16).collect::<Vec<u16>>());
    }

    #[test]
    fn remote_preserves_original_code() {
        let e = ServeError::Remote { code: code::UNKNOWN_DIGEST, message: "gone".into() };
        assert_eq!(e.code(), code::UNKNOWN_DIGEST);
    }
}
