//! Blocking client for the serve protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a time
//! (the protocol is strictly request/response per connection — concurrency
//! comes from opening more connections). Server-reported failures surface as
//! [`ServeError::Remote`] carrying the original wire code.

use crate::batcher::Query;
use crate::error::ServeError;
use crate::protocol::{
    decode_error, decode_stats, put_f32s, read_frame, write_frame, Cursor, Kind, ModelInfo,
    ShardStat,
};
use mfn_core::RefineBudget;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Result of a `Query`/`EncodeQuery` round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Digest of the latent the values were decoded from.
    pub digest: u64,
    /// Whether the latent came from the cache (always true for `Query`).
    pub cache_hit: bool,
    /// Flattened predictions, `count · channels` values.
    pub values: Vec<f32>,
    /// Output channels per query point.
    pub channels: usize,
}

/// Result of a `Refine` round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineResult {
    /// Digest of the cached latent the refinement started from.
    pub digest: u64,
    /// Gradient candidate steps the server ran.
    pub steps_run: u32,
    /// Steps that strictly reduced the residual and were kept.
    pub steps_accepted: u32,
    /// Mean absolute PDE residual at the query points before refinement.
    pub initial_residual: f32,
    /// Residual of the latent the values were decoded from.
    pub final_residual: f32,
    /// Flattened predictions, `count · channels` values.
    pub values: Vec<f32>,
    /// Output channels per query point.
    pub channels: usize,
}

/// A blocking connection to a serve instance.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and applies a default 5 s I/O timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let c = Client { stream };
        c.set_timeout(Some(Duration::from_secs(5)))?;
        Ok(c)
    }

    /// Sets the read and write timeout for subsequent requests.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    fn call(&mut self, kind: Kind, payload: &[u8]) -> Result<(Kind, Vec<u8>), ServeError> {
        write_frame(&mut self.stream, kind, payload).map_err(|e| ServeError::from_io(&e))?;
        let (k, resp) = read_frame(&mut self.stream)?.ok_or(ServeError::Truncated)?;
        match Kind::from_u8(k) {
            Some(Kind::Error) => Err(decode_error(&resp)),
            Some(k) => Ok((k, resp)),
            None => Err(ServeError::UnknownKind { kind: k }),
        }
    }

    fn expect(&mut self, req: Kind, payload: &[u8], want: Kind) -> Result<Vec<u8>, ServeError> {
        let (k, resp) = self.call(req, payload)?;
        if k != want {
            return Err(ServeError::BadPayload(format!("expected {want:?} response, got {k:?}")));
        }
        Ok(resp)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.expect(Kind::Ping, &[], Kind::Pong).map(|_| ())
    }

    /// Fetches model metadata.
    pub fn info(&mut self) -> Result<ModelInfo, ServeError> {
        let resp = self.expect(Kind::Info, &[], Kind::InfoResp)?;
        ModelInfo::decode(&resp)
    }

    /// Encodes a stacked patch (`batch · C · nt · nz · nx` f32s), returning
    /// `(digest, cache_hit)`.
    pub fn encode(&mut self, batch: usize, data: &[f32]) -> Result<(u64, bool), ServeError> {
        let mut p = Vec::with_capacity(4 + data.len() * 4);
        p.extend_from_slice(&(batch as u32).to_le_bytes());
        put_f32s(&mut p, data);
        let resp = self.expect(Kind::Encode, &p, Kind::EncodeResp)?;
        let mut c = Cursor::new(&resp);
        let digest = c.u64()?;
        let hit = c.u8()? != 0;
        c.finish()?;
        Ok((digest, hit))
    }

    /// Queries a cached latent by digest.
    pub fn query(&mut self, digest: u64, queries: &[Query]) -> Result<QueryResult, ServeError> {
        let mut p = Vec::with_capacity(12 + queries.len() * 16);
        p.extend_from_slice(&digest.to_le_bytes());
        put_queries(&mut p, queries);
        let resp = self.expect(Kind::Query, &p, Kind::QueryResp)?;
        decode_query_resp(&resp)
    }

    /// Test-time physics refinement of a cached latent: the server runs up
    /// to `budget.max_steps` gradient steps on a copy of the latent,
    /// minimizing the PDE residual at `queries`, then decodes. Premium
    /// call — expect latency proportional to the budget.
    pub fn refine(
        &mut self,
        digest: u64,
        queries: &[Query],
        budget: RefineBudget,
    ) -> Result<RefineResult, ServeError> {
        let mut p = Vec::with_capacity(28 + queries.len() * 16);
        p.extend_from_slice(&digest.to_le_bytes());
        p.extend_from_slice(&budget.max_steps.to_le_bytes());
        p.extend_from_slice(&budget.tol.to_le_bytes());
        p.extend_from_slice(&budget.max_micros.to_le_bytes());
        put_queries(&mut p, queries);
        let resp = self.expect(Kind::Refine, &p, Kind::RefineResp)?;
        let mut c = Cursor::new(&resp);
        let digest = c.u64()?;
        let steps_run = c.u32()?;
        let steps_accepted = c.u32()?;
        let initial_residual = c.f32()?;
        let final_residual = c.f32()?;
        let count = c.u32()? as usize;
        let channels = c.u32()? as usize;
        let values = c.f32s(
            count
                .checked_mul(channels)
                .ok_or_else(|| ServeError::BadPayload("refine response size overflows".into()))?,
        )?;
        c.finish()?;
        Ok(RefineResult {
            digest,
            steps_run,
            steps_accepted,
            initial_residual,
            final_residual,
            values,
            channels,
        })
    }

    /// Fetches serving statistics: one [`ShardStat`] from a shard, one per
    /// healthy shard from a router.
    pub fn stats(&mut self) -> Result<Vec<ShardStat>, ServeError> {
        let resp = self.expect(Kind::Stats, &[], Kind::StatsResp)?;
        decode_stats(&resp)
    }

    /// Encode + query in one round trip.
    pub fn encode_query(
        &mut self,
        batch: usize,
        data: &[f32],
        queries: &[Query],
    ) -> Result<QueryResult, ServeError> {
        let mut p = Vec::with_capacity(8 + data.len() * 4 + queries.len() * 16);
        p.extend_from_slice(&(batch as u32).to_le_bytes());
        put_f32s(&mut p, data);
        put_queries(&mut p, queries);
        let resp = self.expect(Kind::EncodeQuery, &p, Kind::QueryResp)?;
        decode_query_resp(&resp)
    }
}

fn put_queries(p: &mut Vec<u8>, queries: &[Query]) {
    p.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for &(b, [t, z, x]) in queries {
        p.extend_from_slice(&(b as u32).to_le_bytes());
        for v in [t, z, x] {
            p.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn decode_query_resp(resp: &[u8]) -> Result<QueryResult, ServeError> {
    let mut c = Cursor::new(resp);
    let digest = c.u64()?;
    let cache_hit = c.u8()? != 0;
    let count = c.u32()? as usize;
    let channels = c.u32()? as usize;
    let values = c.f32s(
        count
            .checked_mul(channels)
            .ok_or_else(|| ServeError::BadPayload("query response size overflows".into()))?,
    )?;
    c.finish()?;
    Ok(QueryResult { digest, cache_hit, values, channels })
}
