//! Dataset persistence: a little-endian `f32` binary payload plus a JSON
//! metadata sidecar — no external formats, fully self-describing.

use crate::dataset::{Dataset, DatasetMeta};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the payload format (version 1).
const MAGIC: &[u8; 8] = b"MFNDATA1";

/// Saves a dataset as `<path>` (binary) and `<path>.json` (metadata).
pub fn save_dataset(ds: &Dataset, path: &Path) -> io::Result<()> {
    let meta_json = serde_json::to_string_pretty(&ds.meta)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path.with_extension("json"), meta_json)?;
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(ds.data.len() as u64).to_le_bytes())?;
    for &v in &ds.data {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Loads a dataset written by [`save_dataset`].
pub fn load_dataset(path: &Path) -> io::Result<Dataset> {
    let meta_json = std::fs::read_to_string(path.with_extension("json"))?;
    let meta: DatasetMeta = serde_json::from_str(&meta_json)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic bytes"));
    }
    let mut len_bytes = [0u8; 8];
    r.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes) as usize;
    let expected = meta.nt * crate::dataset::CHANNELS * meta.nz * meta.nx;
    if len != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("payload length {len} does not match metadata ({expected})"),
        ));
    }
    let mut bytes = vec![0u8; len * 4];
    r.read_exact(&mut bytes)?;
    let data: Vec<f32> =
        bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    Ok(Dataset::from_parts(meta, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_solver::{simulate, RbcConfig};

    #[test]
    fn roundtrip() {
        let sim = simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e4, ..Default::default() }, 0.02, 3);
        let ds = Dataset::from_simulation(&sim);
        let dir = std::env::temp_dir().join("mfn_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("ds.bin");
        save_dataset(&ds, &path).expect("save");
        let back = load_dataset(&path).expect("load");
        assert_eq!(back.meta, ds.meta);
        assert_eq!(back.data, ds.data);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_corrupt_magic() {
        let dir = std::env::temp_dir().join("mfn_io_test_bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bad.bin");
        let sim = simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e4, ..Default::default() }, 0.02, 3);
        let ds = Dataset::from_simulation(&sim);
        save_dataset(&ds, &path).expect("save");
        // Corrupt the magic.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[0] = b'X';
        std::fs::write(&path, bytes).expect("write");
        assert!(load_dataset(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
