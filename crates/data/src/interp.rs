//! Space-time trilinear interpolation.
//!
//! Used in three places: ground-truth supervision values at continuous query
//! points (paper Fig. 3, "interpolating the high-resolution ground truth"),
//! Baseline (I) — the classic trilinear upsampler of Table 2 — and the
//! trilinear weights of the continuous decoder's vertex blending.
//!
//! Axis convention throughout: `(t, z, x)`; `x` is periodic, `z` and `t`
//! clamp at their boundaries.

use crate::dataset::{Dataset, CHANNELS};

/// Fractional grid position along one axis: lower index, neighbour index and
/// interpolation weight toward the neighbour.
#[derive(Debug, Clone, Copy)]
pub struct AxisPos {
    /// Lower grid index.
    pub i0: usize,
    /// Upper (or wrapped) grid index.
    pub i1: usize,
    /// Weight of `i1` (`0.0` ⇒ exactly on `i0`).
    pub frac: f32,
}

/// Locates `coord` on a clamped axis with `n` nodes spaced `h` apart.
pub fn locate_clamped(coord: f64, h: f64, n: usize) -> AxisPos {
    assert!(n >= 1 && h > 0.0);
    let s = (coord / h).clamp(0.0, (n - 1) as f64);
    let i0 = (s.floor() as usize).min(n.saturating_sub(2));
    let i1 = (i0 + 1).min(n - 1);
    AxisPos { i0, i1, frac: (s - i0 as f64) as f32 }
}

/// Locates `coord` on a periodic axis with `n` nodes spaced `h` apart
/// (period `n·h`).
pub fn locate_periodic(coord: f64, h: f64, n: usize) -> AxisPos {
    assert!(n >= 1 && h > 0.0);
    let period = h * n as f64;
    let mut c = coord % period;
    if c < 0.0 {
        c += period;
    }
    let s = c / h;
    let i0 = (s.floor() as usize) % n;
    let i1 = (i0 + 1) % n;
    AxisPos { i0, i1, frac: (s - s.floor()) as f32 }
}

/// Trilinear interpolation of all four channels of `ds` at physical
/// coordinates `(t, z, x)`.
pub fn sample_trilinear(ds: &Dataset, t: f64, z: f64, x: f64) -> [f32; CHANNELS] {
    let tp = locate_clamped(t, ds.dt().max(1e-30), ds.meta.nt);
    let zp = locate_clamped(z, ds.dz(), ds.meta.nz);
    let xp = locate_periodic(x, ds.dx(), ds.meta.nx);
    let mut out = [0.0f32; CHANNELS];
    for (c, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (ft, wt) in [(tp.i0, 1.0 - tp.frac), (tp.i1, tp.frac)] {
            if wt == 0.0 {
                continue;
            }
            for (fz, wz) in [(zp.i0, 1.0 - zp.frac), (zp.i1, zp.frac)] {
                if wz == 0.0 {
                    continue;
                }
                for (fx, wx) in [(xp.i0, 1.0 - xp.frac), (xp.i1, xp.frac)] {
                    if wx == 0.0 {
                        continue;
                    }
                    acc += wt * wz * wx * ds.at(ft, c, fz, fx);
                }
            }
        }
        *o = acc;
    }
    out
}

/// Baseline (I): trilinear upsampling of an LR dataset onto the grid of a
/// reference HR dataset (same physical domain). Returns data shaped like the
/// reference's `[nt, 4, nz, nx]`.
pub fn upsample_trilinear(lr: &Dataset, hr_like: &Dataset) -> Dataset {
    let m = &hr_like.meta;
    let mut data = vec![0.0f32; m.nt * CHANNELS * m.nz * m.nx];
    for f in 0..m.nt {
        let t = f as f64 * hr_like.dt();
        for j in 0..m.nz {
            let z = j as f64 * hr_like.dz();
            for i in 0..m.nx {
                let x = i as f64 * hr_like.dx();
                let v = sample_trilinear(lr, t, z, x);
                for c in 0..CHANNELS {
                    data[((f * CHANNELS + c) * m.nz + j) * m.nx + i] = v[c];
                }
            }
        }
    }
    let mut out = Dataset::from_parts(m.clone(), data);
    out.refresh_stats();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetMeta, CH_T};

    /// A synthetic dataset whose channel 0 equals a given trilinear function,
    /// so interpolation must reproduce it exactly.
    fn synthetic(nt: usize, nz: usize, nx: usize, f: impl Fn(f64, f64, f64) -> f64) -> Dataset {
        let meta = DatasetMeta {
            nt,
            nz,
            nx,
            lx: 4.0,
            lz: 1.0,
            duration: 2.0,
            ra: 1e5,
            pr: 1.0,
            seed: 0,
            channel_mean: [0.0; 4],
            channel_std: [1.0; 4],
        };
        let mut data = vec![0.0f32; nt * CHANNELS * nz * nx];
        let dt = meta.duration / (nt - 1) as f64;
        let dz = meta.lz / (nz - 1) as f64;
        let dx = meta.lx / nx as f64;
        for ft in 0..nt {
            for j in 0..nz {
                for i in 0..nx {
                    let v = f(ft as f64 * dt, j as f64 * dz, i as f64 * dx) as f32;
                    for c in 0..CHANNELS {
                        data[((ft * CHANNELS + c) * nz + j) * nx + i] = v * (c + 1) as f32;
                    }
                }
            }
        }
        Dataset::from_parts(meta, data)
    }

    #[test]
    fn exact_on_grid_points() {
        let ds = synthetic(3, 5, 8, |t, z, x| t + 2.0 * z - 0.5 * x);
        let v = sample_trilinear(&ds, 1.0, 0.5, 1.5);
        assert!((v[CH_T] as f64 - (1.0 + 1.0 - 0.75)).abs() < 1e-5);
    }

    #[test]
    fn exact_for_trilinear_functions_off_grid() {
        // f(t,z,x) = 1 + t + z + (x within one cell, linear): trilinear
        // interpolation is exact for functions linear in each axis per cell.
        let ds = synthetic(5, 9, 16, |t, z, _| 1.0 + 0.3 * t + 0.7 * z);
        for &(t, z, x) in &[(0.33, 0.21, 0.7), (1.9, 0.99, 3.2), (0.0, 0.0, 0.0)] {
            let v = sample_trilinear(&ds, t, z, x);
            let expect = 1.0 + 0.3 * t + 0.7 * z;
            assert!((v[CH_T] as f64 - expect).abs() < 1e-4, "at ({t},{z},{x})");
            // Channel scaling carried through.
            assert!((v[3] as f64 - 4.0 * expect).abs() < 5e-4);
        }
    }

    #[test]
    fn clamps_out_of_range_t_and_z() {
        let ds = synthetic(3, 5, 8, |t, z, _| t + z);
        let lo = sample_trilinear(&ds, -5.0, -1.0, 0.0);
        let hi = sample_trilinear(&ds, 99.0, 99.0, 0.0);
        assert!((lo[CH_T] as f64 - 0.0).abs() < 1e-6);
        assert!((hi[CH_T] as f64 - 3.0).abs() < 1e-6);
    }

    #[test]
    fn x_axis_wraps_periodically() {
        let ds = synthetic(2, 3, 8, |_, _, _| 0.0);
        // Build an x-dependent field manually on channel 0.
        let mut ds = ds;
        for f in 0..2 {
            for j in 0..3 {
                for i in 0..8 {
                    let idx = ds.index(f, CH_T, j, i);
                    ds.data[idx] = i as f32;
                }
            }
        }
        // Between last point (x = 3.5, value 7) and wrap (x -> 0, value 0).
        let v = sample_trilinear(&ds, 0.0, 0.0, 3.75);
        assert!((v[CH_T] - 3.5).abs() < 1e-5, "wrap value {}", v[CH_T]);
        // Negative coordinates wrap too.
        let v = sample_trilinear(&ds, 0.0, 0.0, -0.25);
        assert!((v[CH_T] - 3.5).abs() < 1e-5);
    }

    #[test]
    fn upsample_recovers_smooth_field() {
        let hr = synthetic(5, 9, 16, |t, z, x| t + z + (x * 0.8).sin());
        // LR = strided version; upsampling back should be close for the
        // smooth function and exact at shared grid points.
        let lr = crate::downsample::downsample(&hr, 2, 2);
        let up = upsample_trilinear(&lr, &hr);
        for f in (0..5).step_by(2) {
            for j in (0..9).step_by(2) {
                for i in (0..16).step_by(2) {
                    assert!(
                        (up.at(f, CH_T, j, i) - hr.at(f, CH_T, j, i)).abs() < 1e-5,
                        "grid point ({f},{j},{i})"
                    );
                }
            }
        }
        // Off-grid error bounded for the smooth field.
        let mut max_err = 0.0f32;
        for f in 0..5 {
            for j in 0..9 {
                for i in 0..16 {
                    max_err = max_err.max((up.at(f, CH_T, j, i) - hr.at(f, CH_T, j, i)).abs());
                }
            }
        }
        assert!(max_err < 0.2, "interp error {max_err}");
    }

    #[test]
    fn locate_helpers() {
        let p = locate_clamped(0.5, 0.25, 5);
        assert_eq!((p.i0, p.i1), (2, 3));
        assert!(p.frac.abs() < 1e-6);
        let p = locate_periodic(0.99, 0.25, 4);
        assert_eq!((p.i0, p.i1), (3, 0));
        assert!((p.frac - 0.96).abs() < 1e-5);
    }
}
