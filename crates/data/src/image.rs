//! Contour-panel dumps for the Fig. 6 reproduction.
//!
//! Writes grayscale PGM images (universally viewable, zero dependencies) of
//! individual channel frames, normalized to the frame's value range, plus a
//! CSV dump for plotting pipelines.

use crate::dataset::Dataset;
use std::io::{self, Write};
use std::path::Path;

/// Writes one channel of one frame as a binary PGM (P5) image.
///
/// Values are linearly mapped from the frame's `[min, max]` to `[0, 255]`;
/// row 0 (the hot bottom wall) is drawn at the image bottom.
pub fn write_pgm(ds: &Dataset, frame: usize, channel: usize, path: &Path) -> io::Result<()> {
    let (nz, nx) = (ds.meta.nz, ds.meta.nx);
    let field = ds.channel_frame(frame, channel);
    let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
    for &v in field {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = (hi - lo).max(1e-12);
    let mut out = Vec::with_capacity(nz * nx + 32);
    out.extend_from_slice(format!("P5\n{nx} {nz}\n255\n").as_bytes());
    for j in (0..nz).rev() {
        for i in 0..nx {
            let v = field[j * nx + i];
            out.push(((v - lo) / range * 255.0).round().clamp(0.0, 255.0) as u8);
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&out)
}

/// Writes one channel of one frame as CSV (`nz` rows × `nx` columns).
pub fn write_csv(ds: &Dataset, frame: usize, channel: usize, path: &Path) -> io::Result<()> {
    let (nz, nx) = (ds.meta.nz, ds.meta.nx);
    let field = ds.channel_frame(frame, channel);
    let mut s = String::with_capacity(nz * nx * 12);
    for j in 0..nz {
        for i in 0..nx {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{:.6e}", field[j * nx + i]));
        }
        s.push('\n');
    }
    std::fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_solver::{simulate, RbcConfig};

    fn ds() -> Dataset {
        let sim = simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e5, ..Default::default() }, 0.02, 3);
        Dataset::from_simulation(&sim)
    }

    #[test]
    fn pgm_has_correct_header_and_size() {
        let d = ds();
        let dir = std::env::temp_dir().join("mfn_img_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("t.pgm");
        write_pgm(&d, 1, 0, &p).expect("write");
        let bytes = std::fs::read(&p).expect("read");
        let header = b"P5\n16 9\n255\n";
        assert_eq!(&bytes[..header.len()], header);
        assert_eq!(bytes.len(), header.len() + 16 * 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_rows_and_columns() {
        let d = ds();
        let dir = std::env::temp_dir().join("mfn_csv_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join("t.csv");
        write_csv(&d, 0, 2, &p).expect("write");
        let content = std::fs::read_to_string(&p).expect("read");
        let rows: Vec<&str> = content.lines().collect();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].split(',').count(), 16);
        std::fs::remove_dir_all(&dir).ok();
    }
}
