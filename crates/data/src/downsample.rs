//! Low-resolution dataset construction (paper Sec. 3.2).
//!
//! The paper creates its LR training inputs by downsampling the HR solution
//! with factors `d_t = 4` in time and `d_s = 8` in space. We use strided
//! subsampling (every `f`-th grid point/frame), which matches the paper's
//! description of "downsampling" and keeps LR grid points coincident with HR
//! grid points, so the LR grid geometry stays exact.

use crate::dataset::{Dataset, DatasetMeta, CHANNELS};
use std::fmt;

/// Why a downsampling request cannot produce a geometrically valid LR grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownsampleError {
    /// A factor was zero.
    ZeroFactor,
    /// Fewer than 2 frames would remain in time.
    TooFewFrames { nt: usize, ft: usize },
    /// Fewer than 2 grid points would remain along a spatial axis.
    TooFewPoints { nz: usize, nx: usize, fs: usize },
    /// `fs` does not divide the periodic extent `nx`: the strided points
    /// `0, fs, 2fs, …` then have a wrap-around gap different from `fs·dx`,
    /// so no uniform periodic LR grid exists and any reported `lx` would
    /// misstate the geometry.
    UnalignedPeriodicFactor { nx: usize, fs: usize },
}

impl fmt::Display for DownsampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DownsampleError::ZeroFactor => write!(f, "downsampling factors must be positive"),
            DownsampleError::TooFewFrames { nt, ft } => {
                write!(f, "factor {ft} leaves fewer than 2 of {nt} frames")
            }
            DownsampleError::TooFewPoints { nz, nx, fs } => {
                write!(f, "factor {fs} leaves fewer than 2 points of {nz}x{nx}")
            }
            DownsampleError::UnalignedPeriodicFactor { nx, fs } => write!(
                f,
                "spatial factor {fs} does not divide the periodic extent nx = {nx}; \
                 the strided grid would have an uneven wrap-around gap"
            ),
        }
    }
}

impl std::error::Error for DownsampleError {}

/// Strided downsampling by `ft` in time and `fs` in both spatial directions.
///
/// LR sample `(f, j, i)` equals HR sample `(f·ft, j·fs, i·fs)`; the LR
/// extents are the largest strided grids that fit. Normalization statistics
/// are recomputed on the LR data.
///
/// # Errors
/// Rejects factors that are zero, leave fewer than 2 points along any axis,
/// or do not divide the periodic `x` extent (see
/// [`DownsampleError::UnalignedPeriodicFactor`]).
pub fn try_downsample(hr: &Dataset, ft: usize, fs: usize) -> Result<Dataset, DownsampleError> {
    if ft == 0 || fs == 0 {
        return Err(DownsampleError::ZeroFactor);
    }
    let nt = (hr.meta.nt - 1) / ft + 1;
    let nz = (hr.meta.nz - 1) / fs + 1;
    let nx = hr.meta.nx / fs; // periodic direction: plain stride, no endpoint
    if nt < 2 {
        return Err(DownsampleError::TooFewFrames { nt: hr.meta.nt, ft });
    }
    if nz < 2 || nx < 2 {
        return Err(DownsampleError::TooFewPoints { nz: hr.meta.nz, nx: hr.meta.nx, fs });
    }
    if !hr.meta.nx.is_multiple_of(fs) {
        return Err(DownsampleError::UnalignedPeriodicFactor { nx: hr.meta.nx, fs });
    }
    let mut data = vec![0.0f32; nt * CHANNELS * nz * nx];
    for f in 0..nt {
        for c in 0..CHANNELS {
            for j in 0..nz {
                for i in 0..nx {
                    let v = hr.at(f * ft, c, j * fs, i * fs);
                    data[((f * CHANNELS + c) * nz + j) * nx + i] = v;
                }
            }
        }
    }
    // The last LR frame sits at HR frame (nt-1)*ft, which may be before the
    // HR end; duration shrinks accordingly. Spatial lengths follow the same
    // logic: z keeps the node-grid convention; for x, fs | nx is guaranteed
    // above, so nx_lr·fs == nx_hr and the full periodic length is preserved
    // exactly.
    let duration = hr.dt() * ((nt - 1) * ft) as f64;
    let lz = hr.dz() * ((nz - 1) * fs) as f64;
    let lx = hr.dx() * (nx * fs) as f64;
    let mut out = Dataset::from_parts(
        DatasetMeta {
            nt,
            nz,
            nx,
            lx,
            lz,
            duration,
            ra: hr.meta.ra,
            pr: hr.meta.pr,
            seed: hr.meta.seed,
            channel_mean: hr.meta.channel_mean,
            channel_std: hr.meta.channel_std,
        },
        data,
    );
    out.refresh_stats();
    Ok(out)
}

/// Panicking convenience wrapper over [`try_downsample`], for the training
/// pipeline where the factors are static configuration.
///
/// # Panics
/// Panics with the [`DownsampleError`] message on any invalid factor.
pub fn downsample(hr: &Dataset, ft: usize, fs: usize) -> Dataset {
    match try_downsample(hr, ft, fs) {
        Ok(ds) => ds,
        Err(e) => panic!("downsample: {e}"),
    }
}

/// The paper's default factors: `d_t = 4`, `d_s = 8`.
pub const PAPER_DT_FACTOR: usize = 4;
/// Spatial downsampling factor from the paper.
pub const PAPER_DS_FACTOR: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CH_T;
    use mfn_solver::{simulate, RbcConfig};

    fn make_hr() -> Dataset {
        let sim = simulate(
            &RbcConfig { nx: 32, nz: 17, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.08,
            9,
        );
        Dataset::from_simulation(&sim)
    }

    #[test]
    fn shapes_and_values() {
        let hr = make_hr();
        let lr = downsample(&hr, 2, 4);
        assert_eq!(lr.meta.nt, 5);
        assert_eq!(lr.meta.nz, 5);
        assert_eq!(lr.meta.nx, 8);
        for f in 0..lr.meta.nt {
            for j in 0..lr.meta.nz {
                for i in 0..lr.meta.nx {
                    assert_eq!(lr.at(f, CH_T, j, i), hr.at(f * 2, CH_T, j * 4, i * 4));
                }
            }
        }
    }

    #[test]
    fn geometry_is_consistent() {
        let hr = make_hr();
        let lr = downsample(&hr, 2, 4);
        // LR grid spacings are exactly factor × HR spacings.
        assert!((lr.dt() - 2.0 * hr.dt()).abs() < 1e-12);
        assert!((lr.dz() - 4.0 * hr.dz()).abs() < 1e-12);
        assert!((lr.dx() - 4.0 * hr.dx()).abs() < 1e-12);
    }

    #[test]
    fn identity_factors_preserve() {
        let hr = make_hr();
        let same = downsample(&hr, 1, 1);
        assert_eq!(same.meta.nt, hr.meta.nt);
        assert_eq!(same.data, hr.data);
    }

    #[test]
    fn stats_recomputed() {
        let hr = make_hr();
        let lr = downsample(&hr, 2, 4);
        // Stats exist and are finite; T std > 0 since convection is seeded.
        assert!(lr.meta.channel_std[CH_T] > 0.0);
        assert!(lr.meta.channel_mean.iter().all(|m| m.is_finite()));
    }

    #[test]
    #[should_panic(expected = "fewer than 2")]
    fn over_aggressive_factor_panics() {
        let hr = make_hr();
        downsample(&hr, 100, 1);
    }

    #[test]
    fn non_dividing_spatial_factor_is_rejected() {
        // nx = 32; fs = 3 leaves strided points 0,3,…,30 with a wrap gap of
        // 2 — not a uniform periodic grid. The old code silently reported
        // lx = dx·30 (shrinking the domain by the seam gap); now it must be
        // a typed rejection.
        let hr = make_hr();
        match try_downsample(&hr, 1, 3) {
            Err(DownsampleError::UnalignedPeriodicFactor { nx: 32, fs: 3 }) => {}
            other => panic!("expected UnalignedPeriodicFactor, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "does not divide the periodic extent")]
    fn non_dividing_spatial_factor_panics_via_wrapper() {
        let hr = make_hr();
        downsample(&hr, 1, 3);
    }

    #[test]
    fn zero_factor_is_rejected() {
        let hr = make_hr();
        assert_eq!(try_downsample(&hr, 0, 2).unwrap_err(), DownsampleError::ZeroFactor);
        assert_eq!(try_downsample(&hr, 2, 0).unwrap_err(), DownsampleError::ZeroFactor);
    }

    #[test]
    fn dividing_factor_preserves_periodic_length_exactly() {
        let hr = make_hr();
        let lr = try_downsample(&hr, 2, 4).expect("4 divides 32");
        assert_eq!(lr.meta.lx.to_bits(), hr.meta.lx.to_bits());
    }
}
