//! Low-resolution dataset construction (paper Sec. 3.2).
//!
//! The paper creates its LR training inputs by downsampling the HR solution
//! with factors `d_t = 4` in time and `d_s = 8` in space. We use strided
//! subsampling (every `f`-th grid point/frame), which matches the paper's
//! description of "downsampling" and keeps LR grid points coincident with HR
//! grid points, so the LR grid geometry stays exact.

use crate::dataset::{Dataset, DatasetMeta, CHANNELS};

/// Strided downsampling by `ft` in time and `fs` in both spatial directions.
///
/// LR sample `(f, j, i)` equals HR sample `(f·ft, j·fs, i·fs)`; the LR
/// extents are the largest strided grids that fit. Normalization statistics
/// are recomputed on the LR data.
///
/// # Panics
/// Panics if a factor is zero or leaves fewer than 2 points along any axis.
pub fn downsample(hr: &Dataset, ft: usize, fs: usize) -> Dataset {
    assert!(ft >= 1 && fs >= 1, "factors must be positive");
    let nt = (hr.meta.nt - 1) / ft + 1;
    let nz = (hr.meta.nz - 1) / fs + 1;
    let nx = hr.meta.nx / fs; // periodic direction: plain stride, no endpoint
    assert!(nt >= 2, "too few LR frames");
    assert!(nz >= 2 && nx >= 2, "too few LR grid points");
    let mut data = vec![0.0f32; nt * CHANNELS * nz * nx];
    for f in 0..nt {
        for c in 0..CHANNELS {
            for j in 0..nz {
                for i in 0..nx {
                    let v = hr.at(f * ft, c, j * fs, i * fs);
                    data[((f * CHANNELS + c) * nz + j) * nx + i] = v;
                }
            }
        }
    }
    // The last LR frame sits at HR frame (nt-1)*ft, which may be before the
    // HR end; duration shrinks accordingly. Spatial lengths follow the same
    // logic: z keeps the node-grid convention, x keeps full periodic length
    // only if fs divides nx (asserted by construction of the solver grids).
    let duration = hr.dt() * ((nt - 1) * ft) as f64;
    let lz = hr.dz() * ((nz - 1) * fs) as f64;
    let lx = hr.dx() * (nx * fs) as f64;
    let mut out = Dataset::from_parts(
        DatasetMeta {
            nt,
            nz,
            nx,
            lx,
            lz,
            duration,
            ra: hr.meta.ra,
            pr: hr.meta.pr,
            seed: hr.meta.seed,
            channel_mean: hr.meta.channel_mean,
            channel_std: hr.meta.channel_std,
        },
        data,
    );
    out.refresh_stats();
    out
}

/// The paper's default factors: `d_t = 4`, `d_s = 8`.
pub const PAPER_DT_FACTOR: usize = 4;
/// Spatial downsampling factor from the paper.
pub const PAPER_DS_FACTOR: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CH_T;
    use mfn_solver::{simulate, RbcConfig};

    fn make_hr() -> Dataset {
        let sim = simulate(
            &RbcConfig { nx: 32, nz: 17, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.08,
            9,
        );
        Dataset::from_simulation(&sim)
    }

    #[test]
    fn shapes_and_values() {
        let hr = make_hr();
        let lr = downsample(&hr, 2, 4);
        assert_eq!(lr.meta.nt, 5);
        assert_eq!(lr.meta.nz, 5);
        assert_eq!(lr.meta.nx, 8);
        for f in 0..lr.meta.nt {
            for j in 0..lr.meta.nz {
                for i in 0..lr.meta.nx {
                    assert_eq!(lr.at(f, CH_T, j, i), hr.at(f * 2, CH_T, j * 4, i * 4));
                }
            }
        }
    }

    #[test]
    fn geometry_is_consistent() {
        let hr = make_hr();
        let lr = downsample(&hr, 2, 4);
        // LR grid spacings are exactly factor × HR spacings.
        assert!((lr.dt() - 2.0 * hr.dt()).abs() < 1e-12);
        assert!((lr.dz() - 4.0 * hr.dz()).abs() < 1e-12);
        assert!((lr.dx() - 4.0 * hr.dx()).abs() < 1e-12);
    }

    #[test]
    fn identity_factors_preserve() {
        let hr = make_hr();
        let same = downsample(&hr, 1, 1);
        assert_eq!(same.meta.nt, hr.meta.nt);
        assert_eq!(same.data, hr.data);
    }

    #[test]
    fn stats_recomputed() {
        let hr = make_hr();
        let lr = downsample(&hr, 2, 4);
        // Stats exist and are finite; T std > 0 since convection is seeded.
        assert!(lr.meta.channel_std[CH_T] > 0.0);
        assert!(lr.meta.channel_mean.iter().all(|m| m.is_finite()));
    }

    #[test]
    #[should_panic(expected = "too few")]
    fn over_aggressive_factor_panics() {
        let hr = make_hr();
        downsample(&hr, 100, 1);
    }
}
