//! Patch and query-point sampling — the training-batch pipeline of Fig. 3.
//!
//! Each training sample is a fixed-size LR patch (the paper uses
//! `[t, z, x] = [4, 16, 16]`) plus a set of continuous query points inside
//! the patch with ground-truth values interpolated from the HR dataset.
//! Both the patch and the targets are standardized with the *HR* channel
//! statistics so the network always sees one consistent scale.

use crate::dataset::{Dataset, CHANNELS};
use crate::interp::sample_trilinear;
use mfn_tensor::Tensor;
use rand::Rng;

/// The shape of one training sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchSpec {
    /// LR patch frames (paper: 4).
    pub nt: usize,
    /// LR patch rows (paper: 16).
    pub nz: usize,
    /// LR patch columns (paper: 16).
    pub nx: usize,
    /// Continuous query points per sample.
    pub queries: usize,
}

impl PatchSpec {
    /// The paper's configuration: `[4, 16, 16]` patches, 512 queries.
    pub fn paper() -> Self {
        PatchSpec { nt: 4, nz: 16, nx: 16, queries: 512 }
    }

    /// A small configuration for tests and CPU-scale experiments.
    pub fn small() -> Self {
        PatchSpec { nt: 4, nz: 8, nx: 8, queries: 128 }
    }
}

/// One training sample: LR patch, query coordinates, and supervision values.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Normalized LR patch, `[4, nt, nz, nx]`.
    pub lr_patch: Tensor,
    /// Query locations in local patch coordinates `(t, z, x) ∈ [0, 1]³`
    /// (0 = first patch vertex, 1 = last).
    pub query_local: Vec<[f32; 3]>,
    /// Normalized ground-truth `(T, p, u, w)` at each query.
    pub query_values: Vec<[f32; 4]>,
    /// Physical coordinates of patch vertex `(0,0,0)`, axis order `(t,z,x)`.
    pub origin_phys: [f64; 3],
    /// Physical extents from first to last vertex along each axis.
    pub extent_phys: [f64; 3],
}

/// One query point drawn by a [`QueryStrategy`]: a local patch coordinate
/// plus its self-normalized importance weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedQuery {
    /// Local patch coordinate `(t, z, x) ∈ [0, 1]³`.
    pub local: [f32; 3],
    /// Self-normalized importance weight; the weights of one draw sum to 1,
    /// so `Σ w_j f(q_j)` estimates the uniform mean of `f` over the patch.
    pub weight: f32,
}

/// How the continuous query points of one sample are drawn.
///
/// The default training path draws uniformly ([`UniformQueries`]); an
/// importance sampler (e.g. the residual-guided octree in `mfn-sample`)
/// concentrates points where its feedback signal is large and reports the
/// correction weights that keep a weighted loss estimate unbiased.
pub trait QueryStrategy {
    /// Draws `n` query points with self-normalized weights (summing to 1).
    /// All randomness must come from `rng` so draws stay replayable.
    fn draw_queries<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<WeightedQuery>;
}

/// The paper's strategy: i.i.d. uniform points, equal weights. Draws the
/// same `rng.gen::<f32>()` sequence as [`PatchSampler::sample`].
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformQueries;

impl QueryStrategy for UniformQueries {
    fn draw_queries<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<WeightedQuery> {
        assert!(n > 0, "need at least one query");
        let w = 1.0 / n as f32;
        (0..n)
            .map(|_| WeightedQuery {
                local: [rng.gen::<f32>(), rng.gen::<f32>(), rng.gen::<f32>()],
                weight: w,
            })
            .collect()
    }
}

/// Draws patches + query points from an HR/LR dataset pair.
pub struct PatchSampler<'a> {
    hr: &'a Dataset,
    lr: &'a Dataset,
    spec: PatchSpec,
}

impl<'a> PatchSampler<'a> {
    /// Creates a sampler. `hr` and `lr` must describe the same physical
    /// domain (`lr` typically from [`crate::downsample::downsample`]); both
    /// are normalized on the fly with `hr`'s channel statistics.
    ///
    /// # Panics
    /// Panics if the LR grid is smaller than the patch or domains mismatch.
    pub fn new(hr: &'a Dataset, lr: &'a Dataset, spec: PatchSpec) -> Self {
        assert!(lr.meta.nt >= spec.nt, "LR has {} frames, patch wants {}", lr.meta.nt, spec.nt);
        assert!(lr.meta.nz >= spec.nz, "LR has {} rows, patch wants {}", lr.meta.nz, spec.nz);
        assert!(lr.meta.nx >= spec.nx, "LR has {} cols, patch wants {}", lr.meta.nx, spec.nx);
        assert!((hr.meta.lx - lr.meta.lx).abs() < 1e-9, "domain lx mismatch");
        assert!(spec.queries > 0, "need at least one query");
        PatchSampler { hr, lr, spec }
    }

    /// The sample shape in use.
    pub fn spec(&self) -> PatchSpec {
        self.spec
    }

    /// The physical extent of a patch along each `(t, z, x)` axis.
    pub fn patch_extent(&self) -> [f64; 3] {
        [
            (self.spec.nt - 1) as f64 * self.lr.dt(),
            (self.spec.nz - 1) as f64 * self.lr.dz(),
            (self.spec.nx - 1) as f64 * self.lr.dx(),
        ]
    }

    /// Extracts the normalized LR patch with the given LR-grid origin.
    pub fn patch_at(&self, origin: [usize; 3]) -> Sample {
        let [t0, z0, x0] = origin;
        let s = self.spec;
        assert!(t0 + s.nt <= self.lr.meta.nt, "patch t out of range");
        assert!(z0 + s.nz <= self.lr.meta.nz, "patch z out of range");
        assert!(x0 + s.nx <= self.lr.meta.nx, "patch x out of range");
        let mean = self.hr.meta.channel_mean;
        let std = self.hr.meta.channel_std;
        let mut buf = vec![0.0f32; CHANNELS * s.nt * s.nz * s.nx];
        for c in 0..CHANNELS {
            let sd = std[c].max(1e-8);
            for ft in 0..s.nt {
                for j in 0..s.nz {
                    for i in 0..s.nx {
                        let v = self.lr.at(t0 + ft, c, z0 + j, x0 + i);
                        buf[((c * s.nt + ft) * s.nz + j) * s.nx + i] = (v - mean[c]) / sd;
                    }
                }
            }
        }
        Sample {
            lr_patch: Tensor::from_vec(buf, &[CHANNELS, s.nt, s.nz, s.nx]),
            query_local: Vec::new(),
            query_values: Vec::new(),
            origin_phys: [
                t0 as f64 * self.lr.dt(),
                z0 as f64 * self.lr.dz(),
                x0 as f64 * self.lr.dx(),
            ],
            extent_phys: self.patch_extent(),
        }
    }

    /// Normalized HR ground truth at a physical `(t, z, x)` point.
    pub fn hr_value(&self, t: f64, z: f64, x: f64) -> [f32; 4] {
        let raw = sample_trilinear(self.hr, t, z, x);
        let mut out = [0.0f32; 4];
        for c in 0..CHANNELS {
            out[c] =
                (raw[c] - self.hr.meta.channel_mean[c]) / self.hr.meta.channel_std[c].max(1e-8);
        }
        out
    }

    /// Draws one random training sample: uniform patch origin, uniform
    /// continuous query points, HR-interpolated targets.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Sample {
        let s = self.spec;
        let origin = [
            rng.gen_range(0..=self.lr.meta.nt - s.nt),
            rng.gen_range(0..=self.lr.meta.nz - s.nz),
            rng.gen_range(0..=self.lr.meta.nx - s.nx),
        ];
        let mut sample = self.patch_at(origin);
        sample.query_local.reserve(s.queries);
        sample.query_values.reserve(s.queries);
        for _ in 0..s.queries {
            let local = [rng.gen::<f32>(), rng.gen::<f32>(), rng.gen::<f32>()];
            let t = sample.origin_phys[0] + local[0] as f64 * sample.extent_phys[0];
            let z = sample.origin_phys[1] + local[1] as f64 * sample.extent_phys[1];
            let x = sample.origin_phys[2] + local[2] as f64 * sample.extent_phys[2];
            sample.query_local.push(local);
            sample.query_values.push(self.hr_value(t, z, x));
        }
        sample
    }

    /// Draws one sample whose query points come from `strategy` instead of
    /// the built-in uniform draw: same origin draws as [`PatchSampler::sample`],
    /// then `spec.queries` weighted points. Returns the sample plus the
    /// per-query importance weights (summing to 1).
    pub fn sample_with<S: QueryStrategy, R: Rng>(
        &self,
        strategy: &mut S,
        rng: &mut R,
    ) -> (Sample, Vec<f32>) {
        let s = self.spec;
        let origin = [
            rng.gen_range(0..=self.lr.meta.nt - s.nt),
            rng.gen_range(0..=self.lr.meta.nz - s.nz),
            rng.gen_range(0..=self.lr.meta.nx - s.nx),
        ];
        let mut sample = self.patch_at(origin);
        let queries = strategy.draw_queries(s.queries, rng);
        sample.query_local.reserve(queries.len());
        sample.query_values.reserve(queries.len());
        let mut weights = Vec::with_capacity(queries.len());
        for q in queries {
            let t = sample.origin_phys[0] + q.local[0] as f64 * sample.extent_phys[0];
            let z = sample.origin_phys[1] + q.local[1] as f64 * sample.extent_phys[1];
            let x = sample.origin_phys[2] + q.local[2] as f64 * sample.extent_phys[2];
            sample.query_local.push(q.local);
            sample.query_values.push(self.hr_value(t, z, x));
            weights.push(q.weight);
        }
        (sample, weights)
    }

    /// Patch origins whose union of cells covers the whole LR grid
    /// (consecutive patches share a boundary vertex). Used for full-domain
    /// super-resolution at evaluation time.
    pub fn covering_origins(&self) -> Vec<[usize; 3]> {
        let s = self.spec;
        let ts = covering_axis(self.lr.meta.nt, s.nt);
        let zs = covering_axis(self.lr.meta.nz, s.nz);
        let xs = covering_axis(self.lr.meta.nx, s.nx);
        let mut out = Vec::with_capacity(ts.len() * zs.len() * xs.len());
        for &t in &ts {
            for &z in &zs {
                for &x in &xs {
                    out.push([t, z, x]);
                }
            }
        }
        out
    }
}

/// Per-axis patch origins covering `[0, len)` with patches of `p` vertices:
/// stride `p − 1` (consecutive patches share a boundary vertex) plus the
/// final origin `len − p` when the stride does not land on it. Origins are
/// strictly increasing, in-bounds (`o + p ≤ len`), start at 0 and end at
/// `len − p`, with every gap `< p` — the coverage invariants the property
/// tests pin.
///
/// # Panics
/// Panics if `len < p` (no origin can fit) or `p == 0`.
pub fn covering_axis(len: usize, p: usize) -> Vec<usize> {
    assert!(p > 0, "patch axis must be at least 1 vertex");
    assert!(len >= p, "axis of {len} cannot fit patch of {p}");
    let stride = (p - 1).max(1);
    let mut v: Vec<usize> = (0..).map(|k| k * stride).take_while(|&o| o + p <= len).collect();
    let last = len - p;
    if v.last() != Some(&last) {
        v.push(last);
    }
    v
}

/// A mini-batch: stacked patches plus per-sample query data.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stacked LR patches `[N, 4, nt, nz, nx]`.
    pub input: Tensor,
    /// The individual samples (queries and geometry).
    pub samples: Vec<Sample>,
    /// Per-sample importance weights for the query points, parallel to
    /// `samples` (each inner vector sums to 1). Empty for uniform batches —
    /// losses then use the plain unweighted mean.
    pub query_weights: Vec<Vec<f32>>,
}

/// Stacks `n` random samples into a batch.
pub fn make_batch<R: Rng>(sampler: &PatchSampler<'_>, n: usize, rng: &mut R) -> Batch {
    assert!(n > 0);
    let samples: Vec<Sample> = (0..n).map(|_| sampler.sample(rng)).collect();
    let input = stack_patches(&samples);
    Batch { input, samples, query_weights: Vec::new() }
}

/// Stacks `n` samples whose query points come from `strategy`, carrying the
/// per-query importance weights alongside the samples.
pub fn make_batch_with<S: QueryStrategy, R: Rng>(
    sampler: &PatchSampler<'_>,
    n: usize,
    strategy: &mut S,
    rng: &mut R,
) -> Batch {
    assert!(n > 0);
    let mut samples = Vec::with_capacity(n);
    let mut query_weights = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, w) = sampler.sample_with(strategy, rng);
        samples.push(s);
        query_weights.push(w);
    }
    let input = stack_patches(&samples);
    Batch { input, samples, query_weights }
}

/// Stacks the patches of pre-built samples into `[N, 4, nt, nz, nx]`.
pub fn stack_patches(samples: &[Sample]) -> Tensor {
    assert!(!samples.is_empty());
    let dims = samples[0].lr_patch.dims().to_vec();
    let per = samples[0].lr_patch.numel();
    let mut buf = Vec::with_capacity(samples.len() * per);
    for s in samples {
        assert_eq!(s.lr_patch.dims(), &dims[..], "inconsistent patch shapes");
        buf.extend_from_slice(s.lr_patch.data());
    }
    let mut full = vec![samples.len()];
    full.extend_from_slice(&dims);
    Tensor::from_vec(buf, &full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CH_T;
    use crate::downsample::downsample;
    use mfn_solver::{simulate, RbcConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn pair() -> (Dataset, Dataset) {
        let sim = simulate(
            &RbcConfig { nx: 32, nz: 17, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.2,
            17,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        (hr, lr)
    }

    fn spec() -> PatchSpec {
        PatchSpec { nt: 4, nz: 6, nx: 8, queries: 32 }
    }

    #[test]
    fn sample_shapes_and_ranges() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let s = sampler.sample(&mut rng);
        assert_eq!(s.lr_patch.dims(), &[4, 4, 6, 8]);
        assert_eq!(s.query_local.len(), 32);
        assert_eq!(s.query_values.len(), 32);
        for q in &s.query_local {
            for &v in q {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        for ext in s.extent_phys {
            assert!(ext > 0.0);
        }
    }

    #[test]
    fn patch_values_match_lr_grid() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let s = sampler.patch_at([1, 2, 3]);
        let mean = hr.meta.channel_mean[CH_T];
        let std = hr.meta.channel_std[CH_T].max(1e-8);
        for ft in 0..4 {
            for j in 0..6 {
                for i in 0..8 {
                    let expect = (lr.at(1 + ft, CH_T, 2 + j, 3 + i) - mean) / std;
                    let got = s.lr_patch.at(&[CH_T, ft, j, i]);
                    assert!((got - expect).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn queries_at_vertices_match_lr_values() {
        // A query at a patch vertex lands on an LR point, which is an HR grid
        // point too (strided downsampling) — so GT equals the LR value.
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let s = sampler.patch_at([0, 0, 0]);
        // Vertex (1, 2, 3) in local coords:
        let local = [1.0 / 3.0, 2.0 / 5.0, 3.0 / 7.0];
        let t = s.origin_phys[0] + local[0] * s.extent_phys[0];
        let z = s.origin_phys[1] + local[1] * s.extent_phys[1];
        let x = s.origin_phys[2] + local[2] * s.extent_phys[2];
        let gt = sampler.hr_value(t, z, x);
        let patch_v = s.lr_patch.at(&[CH_T, 1, 2, 3]);
        assert!((gt[CH_T] - patch_v).abs() < 1e-4, "{} vs {patch_v}", gt[CH_T]);
    }

    #[test]
    fn covering_origins_cover_everything() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let origins = sampler.covering_origins();
        assert!(!origins.is_empty());
        // Every LR grid point must fall inside at least one patch.
        let s = spec();
        for t in 0..lr.meta.nt {
            for z in 0..lr.meta.nz {
                for x in 0..lr.meta.nx {
                    let covered = origins.iter().any(|o| {
                        t >= o[0]
                            && t < o[0] + s.nt
                            && z >= o[1]
                            && z < o[1] + s.nz
                            && x >= o[2]
                            && x < o[2] + s.nx
                    });
                    assert!(covered, "LR point ({t},{z},{x}) uncovered");
                }
            }
        }
    }

    #[test]
    fn batches_stack_correctly() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = make_batch(&sampler, 3, &mut rng);
        assert_eq!(b.input.dims(), &[3, 4, 4, 6, 8]);
        assert_eq!(b.samples.len(), 3);
        // Row 1 of the batch equals sample 1's patch.
        let per = b.samples[1].lr_patch.numel();
        assert_eq!(&b.input.data()[per..2 * per], b.samples[1].lr_patch.data());
    }

    #[test]
    fn deterministic_with_seed() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let s1 = sampler.sample(&mut ChaCha8Rng::seed_from_u64(7));
        let s2 = sampler.sample(&mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(s1.lr_patch, s2.lr_patch);
        assert_eq!(s1.query_local, s2.query_local);
    }

    #[test]
    #[should_panic(expected = "patch wants")]
    fn rejects_oversized_patch() {
        let (hr, lr) = pair();
        PatchSampler::new(&hr, &lr, PatchSpec { nt: 100, nz: 4, nx: 4, queries: 1 });
    }

    /// `sample_with(UniformQueries)` must consume the identical RNG stream
    /// as the built-in uniform draw — the bit-identity contract that lets
    /// the strategy hook exist without perturbing the default path.
    #[test]
    fn uniform_strategy_replays_builtin_sampler_exactly() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let plain = sampler.sample(&mut ChaCha8Rng::seed_from_u64(23));
        let (via_strategy, weights) =
            sampler.sample_with(&mut UniformQueries, &mut ChaCha8Rng::seed_from_u64(23));
        assert_eq!(plain.lr_patch, via_strategy.lr_patch);
        assert_eq!(plain.query_local, via_strategy.query_local);
        assert_eq!(plain.query_values, via_strategy.query_values);
        let expect = 1.0 / spec().queries as f32;
        assert!(weights.iter().all(|&w| w == expect));
    }

    #[test]
    fn weighted_batches_carry_normalized_weights() {
        let (hr, lr) = pair();
        let sampler = PatchSampler::new(&hr, &lr, spec());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let b = make_batch_with(&sampler, 3, &mut UniformQueries, &mut rng);
        assert_eq!(b.query_weights.len(), 3);
        for (s, w) in b.samples.iter().zip(&b.query_weights) {
            assert_eq!(s.query_local.len(), w.len());
            let sum: f32 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "weights must sum to 1, got {sum}");
        }
        // The plain path leaves the weights empty (uniform marker).
        assert!(make_batch(&sampler, 2, &mut rng).query_weights.is_empty());
    }

    /// Covering origins on a domain the patch does not evenly divide: the
    /// forced final origin keeps coverage complete without going out of
    /// bounds (satellite audit of `covering_origins`/`patch_at`).
    #[test]
    fn covering_origins_on_non_dividing_domain_stay_in_bounds() {
        let (hr, lr) = pair();
        // nz = 9 after downsample; nz patch 7 gives stride 6 with a forced
        // final origin at 2 — an overlap of 5 vertices.
        let sampler = PatchSampler::new(&hr, &lr, PatchSpec { nt: 3, nz: 7, nx: 5, queries: 4 });
        for o in sampler.covering_origins() {
            // patch_at asserts in-bounds internally; a panic here is the bug.
            let s = sampler.patch_at(o);
            assert_eq!(s.lr_patch.dims(), &[4, 3, 7, 5]);
        }
    }
}

#[cfg(test)]
mod covering_properties {
    use super::covering_axis;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// For any axis length and patch size that fits, the covering
        /// origins start at 0, end at `len − p`, stay strictly increasing
        /// and in bounds, and never leave a stride greater than `p` —
        /// i.e. every grid point lies inside at least one patch (a patch
        /// at `o` covers `o..o+p`, so the next origin at most `o + p`
        /// keeps coverage contiguous).
        #[test]
        fn covering_axis_is_complete_and_in_bounds(p in 1usize..32, extra in 0usize..200) {
            let len = p + extra;
            let v = covering_axis(len, p);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v[0], 0);
            prop_assert_eq!(*v.last().expect("nonempty") + p, len);
            for w in v.windows(2) {
                prop_assert!(w[1] > w[0], "origins must be strictly increasing: {:?}", v);
                prop_assert!(w[1] - w[0] <= p, "stride > patch leaves vertices uncovered: {:?}", v);
            }
            for &o in &v {
                prop_assert!(o + p <= len, "origin {} out of bounds for len {}", o, len);
            }
        }
    }
}
