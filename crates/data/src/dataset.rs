//! The space-time dataset container.
//!
//! A [`Dataset`] holds a uniformly-sampled sequence of Rayleigh–Bénard frames
//! as one `[nt, 4, nz, nx]` buffer (channel order `T, p, u, w` — the paper's
//! four physical quantities), together with the physical geometry needed to
//! map grid indices to `(t, z, x)` coordinates and per-channel normalization
//! statistics.

use mfn_solver::Simulation;
use serde::{Deserialize, Serialize};

/// Channel indices of the four physical fields.
pub const CH_T: usize = 0;
/// Pressure channel.
pub const CH_P: usize = 1;
/// Horizontal-velocity channel.
pub const CH_U: usize = 2;
/// Vertical-velocity channel.
pub const CH_W: usize = 3;
/// Number of physical channels.
pub const CHANNELS: usize = 4;

/// Physical/geometric metadata of a dataset (serialized as JSON next to the
/// binary payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMeta {
    /// Number of time frames.
    pub nt: usize,
    /// Grid rows (z).
    pub nz: usize,
    /// Grid columns (x).
    pub nx: usize,
    /// Domain length in x.
    pub lx: f64,
    /// Domain height in z.
    pub lz: f64,
    /// Time of the last frame (first frame is t = 0).
    pub duration: f64,
    /// Rayleigh number of the generating simulation.
    pub ra: f64,
    /// Prandtl number.
    pub pr: f64,
    /// RNG seed of the generating simulation (the "initial condition" id).
    pub seed: u64,
    /// Per-channel means (over all frames) used for normalization.
    pub channel_mean: [f32; CHANNELS],
    /// Per-channel standard deviations.
    pub channel_std: [f32; CHANNELS],
}

/// A uniformly-sampled space-time dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Metadata (geometry, physics, normalization).
    pub meta: DatasetMeta,
    /// Field data, `[nt, 4, nz, nx]` row-major `f32`.
    pub data: Vec<f32>,
}

impl Dataset {
    /// Builds a dataset from a finished simulation, computing normalization
    /// statistics over all frames.
    pub fn from_simulation(sim: &Simulation) -> Self {
        let nt = sim.frames.len();
        let (nz, nx) = (sim.domain.nz, sim.domain.nx);
        let n = nz * nx;
        let mut data = vec![0.0f32; nt * CHANNELS * n];
        for (f, frame) in sim.frames.iter().enumerate() {
            let base = f * CHANNELS * n;
            for k in 0..n {
                data[base + CH_T * n + k] = frame.temp[k] as f32;
                data[base + CH_P * n + k] = frame.p[k] as f32;
                data[base + CH_U * n + k] = frame.u[k] as f32;
                data[base + CH_W * n + k] = frame.w[k] as f32;
            }
        }
        let (channel_mean, channel_std) = channel_stats(&data, nt, n);
        let duration = sim.frames.last().map(|f| f.time).unwrap_or(0.0);
        Dataset {
            meta: DatasetMeta {
                nt,
                nz,
                nx,
                lx: sim.domain.lx,
                lz: sim.domain.lz,
                duration,
                ra: sim.cfg.ra,
                pr: sim.cfg.pr,
                seed: sim.cfg.seed,
                channel_mean,
                channel_std,
            },
            data,
        }
    }

    /// Constructs a dataset from raw parts (used by downsampling and tests).
    pub fn from_parts(meta: DatasetMeta, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            meta.nt * CHANNELS * meta.nz * meta.nx,
            "data length does not match metadata"
        );
        Dataset { meta, data }
    }

    /// Grid spacing in time between frames.
    pub fn dt(&self) -> f64 {
        if self.meta.nt < 2 {
            0.0
        } else {
            self.meta.duration / (self.meta.nt - 1) as f64
        }
    }

    /// Grid spacing in z.
    pub fn dz(&self) -> f64 {
        self.meta.lz / (self.meta.nz - 1).max(1) as f64
    }

    /// Grid spacing in x.
    pub fn dx(&self) -> f64 {
        self.meta.lx / self.meta.nx as f64
    }

    /// Flat index of `(frame, channel, row, col)`.
    #[inline]
    pub fn index(&self, f: usize, c: usize, j: usize, i: usize) -> usize {
        ((f * CHANNELS + c) * self.meta.nz + j) * self.meta.nx + i
    }

    /// Value at `(frame, channel, row, col)`.
    #[inline]
    pub fn at(&self, f: usize, c: usize, j: usize, i: usize) -> f32 {
        self.data[self.index(f, c, j, i)]
    }

    /// One frame of one channel as an `nz × nx` slice.
    pub fn channel_frame(&self, f: usize, c: usize) -> &[f32] {
        let n = self.meta.nz * self.meta.nx;
        let start = (f * CHANNELS + c) * n;
        &self.data[start..start + n]
    }

    /// One frame of one channel converted to `f64` (for the physics metrics).
    pub fn channel_frame_f64(&self, f: usize, c: usize) -> Vec<f64> {
        self.channel_frame(f, c).iter().map(|&v| v as f64).collect()
    }

    /// Recomputes the normalization statistics from the current data.
    pub fn refresh_stats(&mut self) {
        let n = self.meta.nz * self.meta.nx;
        let (mean, std) = channel_stats(&self.data, self.meta.nt, n);
        self.meta.channel_mean = mean;
        self.meta.channel_std = std;
    }

    /// Returns a copy with each channel standardized to zero mean / unit
    /// variance (using the stored statistics).
    pub fn normalized(&self) -> Dataset {
        let n = self.meta.nz * self.meta.nx;
        let mut out = self.clone();
        for f in 0..self.meta.nt {
            for c in 0..CHANNELS {
                let (m, s) = (self.meta.channel_mean[c], self.meta.channel_std[c].max(1e-8));
                let start = (f * CHANNELS + c) * n;
                for v in &mut out.data[start..start + n] {
                    *v = (*v - m) / s;
                }
            }
        }
        out
    }

    /// Inverts [`Dataset::normalized`] on a raw value of channel `c`.
    #[inline]
    pub fn denormalize_value(&self, c: usize, v: f32) -> f32 {
        v * self.meta.channel_std[c].max(1e-8) + self.meta.channel_mean[c]
    }

    /// Splits the dataset along time into `(train, validation)` at
    /// `frac` ∈ (0, 1): the first `ceil(frac·nt)` frames train, the rest
    /// validate (the paper evaluates on a held-out validation set).
    /// Normalization statistics are recomputed per split.
    ///
    /// # Panics
    /// Panics unless both splits end up with at least 2 frames.
    pub fn split_time(&self, frac: f64) -> (Dataset, Dataset) {
        assert!(frac > 0.0 && frac < 1.0, "split fraction must be in (0, 1)");
        let n_train = ((self.meta.nt as f64 * frac).ceil() as usize).max(2);
        assert!(self.meta.nt - n_train >= 2, "validation split too small");
        let take = |lo: usize, hi: usize| -> Dataset {
            let n = self.meta.nz * self.meta.nx;
            let mut data = Vec::with_capacity((hi - lo) * CHANNELS * n);
            data.extend_from_slice(&self.data[lo * CHANNELS * n..hi * CHANNELS * n]);
            let mut meta = self.meta.clone();
            meta.nt = hi - lo;
            // Duration covers the frames of this split (uniform frame dt).
            meta.duration = self.dt() * (hi - lo - 1) as f64;
            let mut ds = Dataset::from_parts(meta, data);
            ds.refresh_stats();
            ds
        };
        (take(0, n_train), take(n_train, self.meta.nt))
    }
}

fn channel_stats(data: &[f32], nt: usize, n: usize) -> ([f32; CHANNELS], [f32; CHANNELS]) {
    let mut mean = [0.0f64; CHANNELS];
    let mut var = [0.0f64; CHANNELS];
    let count = (nt * n) as f64;
    for f in 0..nt {
        for (c, m) in mean.iter_mut().enumerate() {
            let start = (f * CHANNELS + c) * n;
            for &v in &data[start..start + n] {
                *m += v as f64;
            }
        }
    }
    for m in mean.iter_mut() {
        *m /= count;
    }
    for f in 0..nt {
        for c in 0..CHANNELS {
            let start = (f * CHANNELS + c) * n;
            for &v in &data[start..start + n] {
                let d = v as f64 - mean[c];
                var[c] += d * d;
            }
        }
    }
    let mut mean32 = [0.0f32; CHANNELS];
    let mut std32 = [0.0f32; CHANNELS];
    for c in 0..CHANNELS {
        mean32[c] = mean[c] as f32;
        std32[c] = (var[c] / count).sqrt() as f32;
    }
    (mean32, std32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_sim() -> Simulation {
        simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e4, dt_max: 2e-3, ..Default::default() }, 0.02, 3)
    }

    #[test]
    fn from_simulation_layout() {
        let sim = tiny_sim();
        let ds = Dataset::from_simulation(&sim);
        assert_eq!(ds.meta.nt, 3);
        assert_eq!(ds.meta.nz, 9);
        assert_eq!(ds.meta.nx, 16);
        assert_eq!(ds.data.len(), 3 * 4 * 9 * 16);
        // Spot-check channel mapping on the last frame.
        let f = 2;
        assert!((ds.at(f, CH_T, 4, 7) as f64 - sim.frames[f].temp[4 * 16 + 7]).abs() < 1e-6);
        assert!((ds.at(f, CH_U, 2, 3) as f64 - sim.frames[f].u[2 * 16 + 3]).abs() < 1e-6);
        assert!((ds.at(f, CH_W, 1, 1) as f64 - sim.frames[f].w[16 + 1]).abs() < 1e-6);
    }

    #[test]
    fn grid_spacings() {
        let sim = tiny_sim();
        let ds = Dataset::from_simulation(&sim);
        assert!((ds.dt() - 0.01).abs() < 1e-12);
        assert!((ds.dz() - 1.0 / 8.0).abs() < 1e-12);
        assert!((ds.dx() - 4.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_standardizes() {
        let sim = tiny_sim();
        let ds = Dataset::from_simulation(&sim);
        let norm = ds.normalized();
        let n = ds.meta.nz * ds.meta.nx;
        for c in 0..CHANNELS {
            let mut vals = Vec::new();
            for f in 0..ds.meta.nt {
                vals.extend_from_slice(norm.channel_frame(f, c));
            }
            let mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            // Temperature varies, so its std must become ~1.
            if c == CH_T {
                let var: f64 = vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>()
                    / vals.len() as f64;
                assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
            }
            let _ = n;
        }
    }

    #[test]
    fn denormalize_roundtrip() {
        let sim = tiny_sim();
        let ds = Dataset::from_simulation(&sim);
        let norm = ds.normalized();
        let v = ds.at(1, CH_T, 3, 5);
        let nv = norm.at(1, CH_T, 3, 5);
        assert!((ds.denormalize_value(CH_T, nv) - v).abs() < 1e-5);
    }

    #[test]
    fn meta_serde_roundtrip() {
        let sim = tiny_sim();
        let ds = Dataset::from_simulation(&sim);
        let json = serde_json::to_string(&ds.meta).expect("serialize");
        let back: DatasetMeta = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, ds.meta);
    }

    #[test]
    fn split_time_partitions_frames() {
        let sim = simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e4, ..Default::default() }, 0.1, 11);
        let ds = Dataset::from_simulation(&sim);
        let (train, valid) = ds.split_time(0.7);
        assert_eq!(train.meta.nt + valid.meta.nt, ds.meta.nt);
        assert_eq!(train.meta.nt, 8);
        // Values preserved: first valid frame equals HR frame 8.
        for c in 0..CHANNELS {
            for j in 0..9 {
                for i in 0..16 {
                    assert_eq!(valid.at(0, c, j, i), ds.at(8, c, j, i));
                    assert_eq!(train.at(3, c, j, i), ds.at(3, c, j, i));
                }
            }
        }
        // Frame spacing unchanged.
        assert!((train.dt() - ds.dt()).abs() < 1e-12);
        assert!((valid.dt() - ds.dt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "validation split too small")]
    fn split_time_rejects_degenerate() {
        let sim = simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e4, ..Default::default() }, 0.05, 4);
        Dataset::from_simulation(&sim).split_time(0.95);
    }

    #[test]
    #[should_panic(expected = "does not match metadata")]
    fn from_parts_validates() {
        let sim = tiny_sim();
        let ds = Dataset::from_simulation(&sim);
        Dataset::from_parts(ds.meta.clone(), vec![0.0; 7]);
    }
}
