//! # mfn-data
//!
//! The data pipeline of the MeshfreeFlowNet reproduction (paper Sec. 3.2 and
//! the query/supervision machinery of Fig. 3):
//!
//! - [`dataset`]: the `[nt, 4, nz, nx]` space-time container (`T, p, u, w`)
//!   with normalization statistics;
//! - [`downsample`](mod@downsample): strided LR construction (paper factors
//!   `d_t=4, d_s=8`);
//! - [`interp`]: space-time trilinear interpolation — HR supervision values
//!   and the Table 2 Baseline (I) upsampler;
//! - [`patch`]: fixed-size LR patch + continuous query-point sampling;
//! - [`io`]: binary + JSON persistence;
//! - [`image`]: PGM/CSV contour dumps for the Fig. 6 panels.

pub mod dataset;
pub mod downsample;
pub mod image;
pub mod interp;
pub mod io;
pub mod patch;

pub use dataset::{Dataset, DatasetMeta, CHANNELS, CH_P, CH_T, CH_U, CH_W};
pub use downsample::{
    downsample, try_downsample, DownsampleError, PAPER_DS_FACTOR, PAPER_DT_FACTOR,
};
pub use interp::{sample_trilinear, upsample_trilinear};
pub use io::{load_dataset, save_dataset};
pub use patch::{
    covering_axis, make_batch, make_batch_with, stack_patches, Batch, PatchSampler, PatchSpec,
    QueryStrategy, Sample, UniformQueries, WeightedQuery,
};
