//! `train` — train a MeshfreeFlowNet on datasets produced by `gendata` and
//! save a checkpoint.
//!
//! ```text
//! usage: train --hr PATH --lr PATH --ckpt PATH [--epochs N] [--gamma G]
//!              [--rate LR] [--batch N] [--workers N] [--valid-frac F]
//!              [--telemetry PATH] [--checkpoint-every N] [--resume PATH]
//!              [--adaptive-sampling] [--sampler-epsilon E]
//! ```
//!
//! With `--workers > 1`, trains data-parallel with the ring all-reduce.
//! With `--adaptive-sampling`, query points are drawn from the
//! residual-guided octree in `mfn-sample` instead of uniformly
//! (`--sampler-epsilon` sets the uniform blend floor ε, default 0.2); the
//! default remains the uniform sampler, bit-identical to builds without
//! the feature.
//! With `--valid-frac`, holds out the trailing fraction of frames and
//! reports the physics-metric scoreboard on the held-out range.
//! With `--telemetry`, appends one JSON object per gradient step (losses,
//! gradient norms, per-phase timings) to the given `.jsonl` file.
//! With `--checkpoint-every N`, writes a full train-state checkpoint
//! (params, BN stats, Adam moments, sampler position, epoch/batch cursor)
//! every N gradient steps to `<ckpt>.state`; `--resume PATH` continues a
//! run from such a file bit-identically to one that was never interrupted.
//! With `--workers > 1`, either flag routes training through the elastic
//! supervisor, which snapshots once per epoch instead of every N steps.

use mfn_core::{
    evaluate_pair, table_header, Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer,
};
use mfn_data::{downsample, load_dataset, PatchSpec};
use mfn_dist::{train_data_parallel_recorded, train_elastic, FaultPlan, SupervisorConfig};
use mfn_telemetry::Recorder;
use std::path::PathBuf;

struct Args {
    hr: PathBuf,
    lr: Option<PathBuf>,
    ckpt: PathBuf,
    tc: TrainConfig,
    gamma: f32,
    workers: usize,
    valid_frac: f64,
    telemetry: Option<PathBuf>,
    resume: Option<PathBuf>,
}

fn parse() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: train --hr PATH [--lr PATH] --ckpt PATH [--epochs N] \
                 [--gamma G] [--rate LR] [--batch N] [--workers N] [--valid-frac F] \
                 [--telemetry PATH] [--checkpoint-every N] [--resume PATH] \
                 [--adaptive-sampling] [--sampler-epsilon E]";
    let mut hr = None;
    let mut lr = None;
    let mut ckpt = None;
    let mut tc = TrainConfig {
        epochs: 60,
        batches_per_epoch: 8,
        batch_size: 4,
        lr: 1e-2,
        lr_decay: 0.98,
        ..Default::default()
    };
    let mut gamma = MfnConfig::GAMMA_STAR;
    let mut workers = 1usize;
    let mut valid_frac = 0.0f64;
    let mut telemetry = None;
    let mut resume = None;
    let mut i = 0;
    let next = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {what} needs a value\n{usage}");
                std::process::exit(2);
            })
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--hr" => hr = Some(PathBuf::from(next(&argv, &mut i, "--hr"))),
            "--lr" => lr = Some(PathBuf::from(next(&argv, &mut i, "--lr"))),
            "--ckpt" => ckpt = Some(PathBuf::from(next(&argv, &mut i, "--ckpt"))),
            "--epochs" => tc.epochs = next(&argv, &mut i, "--epochs").parse().expect("integer"),
            "--gamma" => gamma = next(&argv, &mut i, "--gamma").parse().expect("float"),
            "--rate" => tc.lr = next(&argv, &mut i, "--rate").parse().expect("float"),
            "--batch" => tc.batch_size = next(&argv, &mut i, "--batch").parse().expect("integer"),
            "--workers" => workers = next(&argv, &mut i, "--workers").parse().expect("integer"),
            "--valid-frac" => {
                valid_frac = next(&argv, &mut i, "--valid-frac").parse().expect("float")
            }
            "--telemetry" => telemetry = Some(PathBuf::from(next(&argv, &mut i, "--telemetry"))),
            "--checkpoint-every" => {
                tc.checkpoint_every =
                    next(&argv, &mut i, "--checkpoint-every").parse().expect("integer")
            }
            "--resume" => resume = Some(PathBuf::from(next(&argv, &mut i, "--resume"))),
            "--adaptive-sampling" => tc.adaptive_sampling = true,
            "--sampler-epsilon" => {
                tc.sampler_epsilon =
                    next(&argv, &mut i, "--sampler-epsilon").parse().expect("float")
            }
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let missing = |what: &str| -> ! {
        eprintln!("error: {what} is required\n{usage}");
        std::process::exit(2);
    };
    Args {
        hr: hr.unwrap_or_else(|| missing("--hr")),
        lr,
        ckpt: ckpt.unwrap_or_else(|| missing("--ckpt")),
        tc,
        gamma,
        workers,
        valid_frac,
        telemetry,
        resume,
    }
}

fn main() {
    let args = parse();
    let hr_full = load_dataset(&args.hr).expect("load HR dataset");
    let (hr, valid) = if args.valid_frac > 0.0 {
        let (a, b) = hr_full.split_time(1.0 - args.valid_frac);
        (a, Some(b))
    } else {
        (hr_full, None)
    };
    let lr = match &args.lr {
        Some(p) => load_dataset(p).expect("load LR dataset"),
        None => downsample(&hr, 4, 8),
    };
    eprintln!(
        "HR [{} x {} x {}], LR [{} x {} x {}], gamma = {}",
        hr.meta.nt, hr.meta.nz, hr.meta.nx, lr.meta.nt, lr.meta.nz, lr.meta.nx, args.gamma
    );
    if args.tc.adaptive_sampling {
        eprintln!("adaptive query sampling on (epsilon = {})", args.tc.sampler_epsilon);
    }
    // Patch shape adapted to the LR grid.
    let patch = PatchSpec {
        nt: lr.meta.nt.min(4),
        nz: lr.meta.nz.min(4),
        nx: lr.meta.nx.min(8),
        queries: 256,
    };
    let mut mcfg = MfnConfig::small();
    mcfg.patch = patch;
    mcfg.gamma = args.gamma;
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);
    let recorder = match &args.telemetry {
        Some(path) => {
            let r = Recorder::jsonl(path).expect("create telemetry file");
            eprintln!("telemetry -> {}", path.display());
            r
        }
        None => Recorder::null(),
    };

    // Full train-state checkpoints (periodic writes and resume) live next to
    // the model checkpoint unless --resume names an existing file.
    let state_path = args.resume.clone().unwrap_or_else(|| {
        let mut p = args.ckpt.as_os_str().to_owned();
        p.push(".state");
        PathBuf::from(p)
    });
    let fault_tolerant = args.tc.checkpoint_every > 0 || args.resume.is_some();

    let model = if args.workers > 1 {
        if fault_tolerant {
            // The elastic supervisor checkpoints the whole multi-rank state
            // once per epoch and resumes from an existing file on its own.
            eprintln!(
                "elastic training on {} workers (state: {}) ...",
                args.workers,
                state_path.display()
            );
            let sup = SupervisorConfig {
                workers: args.workers,
                checkpoint_path: Some(state_path.clone()),
                ..Default::default()
            };
            let r =
                train_elastic(&corpus, &mcfg, &args.tc, &sup, &FaultPlan::none(), recorder.clone());
            eprintln!(
                "final loss {:.4}, world {}, failures {}, ring re-forms {}{}",
                r.epoch_losses.last().copied().unwrap_or(f32::NAN),
                r.final_world,
                r.failures,
                r.ring_reforms,
                if r.completed { "" } else { " (run stopped early)" }
            );
            let mut m = MeshfreeFlowNet::new(mcfg);
            m.store.unflatten_into(&r.final_params);
            m
        } else {
            eprintln!("data-parallel training on {} workers ...", args.workers);
            let r = train_data_parallel_recorded(
                &corpus,
                &mcfg,
                &args.tc,
                args.workers,
                recorder.clone(),
            );
            eprintln!(
                "throughput {:.1} samples/s, final loss {:.4}",
                r.throughput,
                r.epoch_losses.last().copied().unwrap_or(f32::NAN)
            );
            let total_wait: f64 = r.allreduce_wait.iter().sum();
            eprintln!("all-reduce wait: {:.3}s total across {} ranks", total_wait, r.workers);
            let mut m = MeshfreeFlowNet::new(mcfg);
            m.store.unflatten_into(&r.final_params);
            m
        }
    } else {
        let mut trainer = match &args.resume {
            Some(path) => {
                let t = Trainer::resume(MeshfreeFlowNet::new(mcfg), args.tc, path).unwrap_or_else(
                    |e| {
                        eprintln!("error: cannot resume from {}: {e}", path.display());
                        std::process::exit(1);
                    },
                );
                eprintln!("resumed from {} at step {}", path.display(), t.steps_taken());
                t
            }
            None => Trainer::new(MeshfreeFlowNet::new(mcfg), args.tc),
        }
        .with_recorder(recorder.clone());
        if fault_tolerant {
            trainer = trainer.with_checkpointing(&state_path);
            if args.tc.checkpoint_every > 0 {
                eprintln!(
                    "train-state checkpoints every {} steps -> {}",
                    args.tc.checkpoint_every,
                    state_path.display()
                );
            }
        }
        let recs = trainer.train(&corpus);
        for r in recs.iter().step_by((recs.len() / 8).max(1)) {
            eprintln!(
                "epoch {:>4}  loss {:.4}  (pred {:.4}, eq {:.4})",
                r.epoch, r.loss, r.prediction, r.equation
            );
        }
        if fault_tolerant {
            // A final state write captures the completed run so a later
            // --resume with more epochs continues instead of restarting.
            trainer.save_checkpoint(&state_path).expect("write final train state");
        }
        trainer.model
    };
    recorder.flush();
    let mut model = model;
    model.save(&args.ckpt).expect("save checkpoint");
    eprintln!("checkpoint written to {}", args.ckpt.display());
    // Architecture sidecar: MFNSTAT1/MFNCKPT1 frames carry tensors, not the
    // architecture, so `serve` needs this to rebuild the exact model.
    let cfg_path = {
        let mut p = args.ckpt.as_os_str().to_owned();
        p.push(".cfg.json");
        PathBuf::from(p)
    };
    model.cfg.save_json(&cfg_path).expect("write config sidecar");
    eprintln!("config sidecar written to {}", cfg_path.display());

    if let Some(valid) = valid {
        eprintln!("evaluating on held-out frames ...");
        let valid_lr = downsample(&valid, 4, 8);
        let sr = model.super_resolve(&valid_lr, &valid.meta, corpus.stats);
        let nu = (valid.meta.pr / valid.meta.ra).sqrt();
        println!("{}", table_header());
        println!("{}", evaluate_pair("validation", &valid, &sr, nu, 0).format());
    }
}
