//! `gendata` — generate Rayleigh–Bénard datasets to disk.
//!
//! ```text
//! usage: gendata --out PATH [--nx N] [--nz N] [--frames N] [--duration S]
//!                [--ra RA] [--pr PR] [--seed S] [--ds-t F --ds-s F]
//! ```
//!
//! Writes the HR dataset to `PATH` (binary + `.json` metadata) and, when
//! downsampling factors are given, the LR companion to `PATH.lr`.

use mfn_data::{downsample, save_dataset, Dataset};
use mfn_solver::{simulate, RbcConfig};
use std::path::PathBuf;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut cfg = RbcConfig { nx: 128, nz: 33, dt_max: 2e-3, ..Default::default() };
    let mut frames = 49usize;
    let mut duration = 12.0f64;
    let mut ds_t = 0usize;
    let mut ds_s = 0usize;
    let mut i = 0;
    let usage = "usage: gendata --out PATH [--nx N] [--nz N] [--frames N] \
                 [--duration S] [--ra RA] [--pr PR] [--seed S] [--ds-t F --ds-s F]";
    let parse = |argv: &[String], i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i)
            .unwrap_or_else(|| {
                eprintln!("error: {what} needs a value\n{usage}");
                std::process::exit(2);
            })
            .clone()
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => out = Some(PathBuf::from(parse(&argv, &mut i, "--out"))),
            "--nx" => cfg.nx = parse(&argv, &mut i, "--nx").parse().expect("--nx integer"),
            "--nz" => cfg.nz = parse(&argv, &mut i, "--nz").parse().expect("--nz integer"),
            "--frames" => {
                frames = parse(&argv, &mut i, "--frames").parse().expect("--frames integer")
            }
            "--duration" => {
                duration = parse(&argv, &mut i, "--duration").parse().expect("--duration float")
            }
            "--ra" => cfg.ra = parse(&argv, &mut i, "--ra").parse().expect("--ra float"),
            "--pr" => cfg.pr = parse(&argv, &mut i, "--pr").parse().expect("--pr float"),
            "--seed" => cfg.seed = parse(&argv, &mut i, "--seed").parse().expect("--seed integer"),
            "--ds-t" => ds_t = parse(&argv, &mut i, "--ds-t").parse().expect("--ds-t integer"),
            "--ds-s" => ds_s = parse(&argv, &mut i, "--ds-s").parse().expect("--ds-s integer"),
            "--help" | "-h" => {
                println!("{usage}");
                return;
            }
            other => {
                eprintln!("error: unknown option {other}\n{usage}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| {
        eprintln!("error: --out is required\n{usage}");
        std::process::exit(2);
    });

    eprintln!(
        "simulating {}x{} grid, Ra = {:.2e}, Pr = {}, {} frames over {duration} s ...",
        cfg.nx, cfg.nz, cfg.ra, cfg.pr, frames
    );
    let t0 = std::time::Instant::now();
    let sim = simulate(&cfg, duration, frames);
    let hr = Dataset::from_simulation(&sim);
    save_dataset(&hr, &out).expect("write HR dataset");
    eprintln!(
        "wrote {} ({} frames, {} MB) in {:.0}s",
        out.display(),
        hr.meta.nt,
        hr.data.len() * 4 / (1024 * 1024),
        t0.elapsed().as_secs_f64()
    );
    if ds_t > 0 && ds_s > 0 {
        let lr = downsample(&hr, ds_t, ds_s);
        let lr_path = PathBuf::from(format!("{}.lr", out.display()));
        save_dataset(&lr, &lr_path).expect("write LR dataset");
        eprintln!(
            "wrote {} ({}x{}x{} LR companion, factors {ds_t}x/{ds_s}x)",
            lr_path.display(),
            lr.meta.nt,
            lr.meta.nz,
            lr.meta.nx
        );
    }
}
