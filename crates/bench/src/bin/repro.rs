//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! Usage: repro <experiment> [options]
//!
//! Experiments:
//!   table1     gamma ablation (paper Table 1)
//!   table2     baselines comparison (paper Table 2)
//!   table3     unseen initial conditions (paper Table 3)
//!   table4     Rayleigh-number generalization (paper Table 4)
//!   fig6       contour panels: LR / prediction / ground truth (paper Fig. 6)
//!   fig7a      throughput & scaling-efficiency curve (paper Fig. 7a)
//!   fig7b      loss vs. epochs per worker count (paper Fig. 7b)
//!   fig7c      loss vs. wall time per worker count (paper Fig. 7c)
//!   ablation   design-choice ablations: FD stencil step, decoder
//!              activation, PDE-constraint combinations
//!   all        every experiment at the chosen scale
//!
//! Options:
//!   --quick         CI-sized scale (~minutes total)
//!   --paper-scale   the paper's 512x128x400 configuration (hours on CPU)
//!   --epochs N      override training epochs
//!   --out DIR       output directory for fig6 panels / JSON records
//!                   (default: results/)
//!
//! Every run also appends per-experiment wall-clock spans to
//! `<out>/repro_telemetry.jsonl` (one JSON object per line).
//! ```

use mfn_bench::{
    ablation_activation, ablation_constraints, ablation_fd_step, fig6, fig7, print_rows, table1,
    table2, table3, table4, ExperimentScale, TABLE1_GAMMAS,
};
use mfn_telemetry::Recorder;
use std::path::PathBuf;

struct Args {
    experiment: String,
    scale: ExperimentScale,
    out: PathBuf,
    gammas: Vec<f32>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        eprintln!("{}", USAGE);
        std::process::exit(if argv.is_empty() { 2 } else { 0 });
    }
    let experiment = argv[0].clone();
    let mut scale = ExperimentScale::default_scale();
    let mut out = PathBuf::from("results");
    let mut gammas = TABLE1_GAMMAS.to_vec();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => scale = ExperimentScale::quick(),
            "--paper-scale" => scale = ExperimentScale::paper(),
            "--epochs" => {
                i += 1;
                scale.epochs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--epochs needs an integer"));
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(argv.get(i).unwrap_or_else(|| die("--out needs a path")));
            }
            "--gammas" => {
                i += 1;
                gammas = argv
                    .get(i)
                    .unwrap_or_else(|| die("--gammas needs a comma-separated list"))
                    .split(',')
                    .map(|v| v.parse().unwrap_or_else(|_| die("bad gamma value")))
                    .collect();
            }
            other => die(&format!("unknown option {other}")),
        }
        i += 1;
    }
    Args { experiment, scale, out, gammas }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2)
}

const USAGE: &str =
    "usage: repro <table1|table2|table3|table4|fig6|fig7a|fig7b|fig7c|ablation|all> \
                     [--quick|--paper-scale] [--epochs N] [--gammas A,B,...] [--out DIR]";

fn run_fig7(args: &Args, which: char) {
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4);
    let (points, model) = fig7(&args.scale, cores.max(2));
    for w in ['a', 'b', 'c'] {
        if which == w || which == '*' {
            print_fig7(&points, &model, w);
        }
    }
}

fn print_fig7(points: &[mfn_bench::ScalingPoint], model: &mfn_dist::ScalingModel, which: char) {
    match which {
        'a' => {
            println!("\n=== Fig. 7a: throughput vs number of workers ===");
            println!("{:>8} {:>16} {:>16} {:>12}", "workers", "samples/s", "ideal", "efficiency");
            let base = points[0].throughput;
            for p in points {
                println!(
                    "{:>8} {:>16.1} {:>16.1} {:>11.1}% (measured)",
                    p.workers,
                    p.throughput,
                    base * p.workers as f64,
                    100.0 * p.throughput / (base * p.workers as f64)
                );
            }
            for n in [16usize, 32, 64, 128] {
                if n > points.last().map(|p| p.workers).unwrap_or(0) {
                    println!(
                        "{:>8} {:>16.1} {:>16.1} {:>11.1}% (model)",
                        n,
                        model.throughput(n),
                        model.throughput(1) * n as f64,
                        100.0 * model.efficiency(n)
                    );
                }
            }
            println!("\npaper: 96.80% efficiency at 128 GPUs");
        }
        'b' => {
            println!("\n=== Fig. 7b: loss vs epochs ===");
            print!("{:>6}", "epoch");
            for p in points {
                print!(" {:>12}", format!("{}w", p.workers));
            }
            println!();
            let epochs = points[0].epoch_losses.len();
            for e in 0..epochs {
                print!("{:>6}", e);
                for p in points {
                    print!(" {:>12.5}", p.epoch_losses[e]);
                }
                println!();
            }
        }
        'c' => {
            println!("\n=== Fig. 7c: loss vs wall time (seconds) ===");
            for p in points {
                println!("workers = {}", p.workers);
                for (w, l) in p.epoch_wall.iter().zip(&p.epoch_losses) {
                    println!("  t={w:>9.3}s  loss={l:.5}");
                }
            }
        }
        _ => unreachable!(),
    }
}

fn main() {
    let args = parse_args();
    let t0 = std::time::Instant::now();
    // Per-experiment spans land next to the experiment outputs; telemetry
    // failure (e.g. read-only out dir) must not block the run itself.
    std::fs::create_dir_all(&args.out).ok();
    let recorder = Recorder::jsonl(&args.out.join("repro_telemetry.jsonl"))
        .unwrap_or_else(|_| Recorder::null());
    let _experiment_span = recorder.span(match args.experiment.as_str() {
        "table1" => "table1",
        "table2" => "table2",
        "table3" => "table3",
        "table4" => "table4",
        "fig6" => "fig6",
        "ablation" => "ablation",
        "fig7" | "fig7a" | "fig7b" | "fig7c" => "fig7",
        _ => "all",
    });
    match args.experiment.as_str() {
        "table1" => {
            let rows = table1(&args.scale, &args.gammas);
            print_rows("Table 1: equation-loss weight (gamma) ablation", &rows);
        }
        "table2" => {
            let rows = table2(&args.scale);
            print_rows("Table 2: MeshfreeFlowNet vs baselines", &rows);
        }
        "table3" => {
            let rows = table3(&args.scale, 3);
            print_rows("Table 3: unseen initial conditions", &rows);
        }
        "table4" => {
            let rows = table4(&args.scale, &[2e5, 8e5, 3e6], &[1e4, 1e5, 5e6, 1e7]);
            print_rows("Table 4: Rayleigh-number generalization", &rows);
        }
        "fig6" => {
            fig6(&args.scale, &args.out.join("fig6")).expect("fig6 output");
            println!("fig6 panels written to {}", args.out.join("fig6").display());
        }
        "ablation" => {
            println!("\n=== Ablation: FD stencil step (equation-loss derivative substitution) ===");
            println!("{:>10} {:>12} {:>12}", "h", "pred loss", "eq loss");
            for (h, p, e) in ablation_fd_step(&args.scale, &[0.01, 0.02, 0.05, 0.1]) {
                println!("{h:>10} {p:>12.4} {e:>12.4}");
            }
            println!("\n=== Ablation: decoder activation ===");
            println!("{:>10} {:>12} {:>12}", "act", "pred loss", "eq loss");
            for (n, p, e) in ablation_activation(&args.scale) {
                println!("{n:>10} {p:>12.4} {e:>12.4}");
            }
            println!("\n=== Ablation: PDE constraint combinations ===");
            println!("{:>18} {:>12} {:>12}", "constraints", "pred loss", "eq loss");
            for (n, p, e) in ablation_constraints(&args.scale) {
                println!("{n:>18} {p:>12.4} {e:>12.4}");
            }
        }
        "fig7" => run_fig7(&args, '*'),
        "fig7a" => run_fig7(&args, 'a'),
        "fig7b" => run_fig7(&args, 'b'),
        "fig7c" => run_fig7(&args, 'c'),
        "all" => {
            print_rows("Table 1", &table1(&args.scale, &TABLE1_GAMMAS));
            print_rows("Table 2", &table2(&args.scale));
            print_rows("Table 3", &table3(&args.scale, 3));
            print_rows("Table 4", &table4(&args.scale, &[2e5, 8e5, 3e6], &[1e4, 1e5, 5e6, 1e7]));
            fig6(&args.scale, &args.out.join("fig6")).expect("fig6 output");
            run_fig7(&args, 'a');
            run_fig7(&args, 'b');
            run_fig7(&args, 'c');
        }
        other => die(&format!("unknown experiment {other}")),
    }
    drop(_experiment_span);
    recorder.gauge("total_seconds", t0.elapsed().as_secs_f64());
    recorder.flush();
    eprintln!("\n[{}] completed in {:.0}s", args.experiment, t0.elapsed().as_secs_f64());
}
