//! `bench` — kernel + training-step micro-benchmarks with JSON output.
//!
//! ```text
//! usage: bench [--quick] [--out PATH]
//! ```
//!
//! Measures the blocked GEMM (all three transpose layouts) against the
//! pre-optimization naive `ikj` kernel kept here as a frozen reference,
//! the two conv3d lowerings, and one full training step with the
//! workspace pool on vs off. Results land in `BENCH_kernels.json`
//! (default; `--out` overrides): median wall time, GFLOP/s, heap bytes
//! allocated per call (counted by the `count-alloc` global allocator,
//! on by default), and workspace-pool hit/miss counters.
//!
//! The binary doubles as a regression gate: before timing anything it
//! re-checks the blocked GEMM against the naive reference on
//! tile-unaligned shapes and `conv3d_im2col` against the direct kernel,
//! and exits non-zero on any mismatch. `--quick` shrinks the problem
//! sizes for CI; the full run additionally asserts the ≥2× speedup the
//! optimization is required to hold on the 256³ GEMM.

use mfn_core::{Corpus, FrozenModel, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer};
use mfn_data::{downsample, make_batch, Dataset, PatchSampler, PatchSpec};
use mfn_solver::{simulate, RbcConfig};
use mfn_tensor::{conv3d, conv3d_im2col, gemm, workspace, MatLayout, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Counting allocator: every heap allocation in the process adds to a
/// pair of atomics so benchmarks can report bytes-allocated-per-call.
/// The counters only track `alloc`/`realloc` growth — frees are not
/// subtracted, because "how much did the allocator have to hand out"
/// is exactly the churn the workspace pool exists to remove.
#[cfg(feature = "count-alloc")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static BYTES: AtomicU64 = AtomicU64::new(0);
    pub static CALLS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers all allocation to `System`; the atomics only observe.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
            BYTES.fetch_add(new_size.saturating_sub(l.size()) as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, new_size)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;
}

/// Heap bytes handed out by the allocator so far (0 without `count-alloc`).
fn alloc_bytes() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        counting_alloc::BYTES.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// Allocation calls so far (0 without `count-alloc`).
fn alloc_calls() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        counting_alloc::CALLS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// The pre-optimization GEMM, frozen verbatim (minus rayon) from the seed
/// tree's `linalg::matmul`: row-major `ikj` with the zero-skip branch.
/// This is the baseline every speedup in the JSON is measured against.
fn naive_ikj(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for (i, out_row) in c.chunks_mut(n).enumerate() {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
}

/// Deterministic pseudo-random matrix data (no RNG dependency in the
/// timed path; quarter-integers keep f32 sums exactly representable).
fn lcg_fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 33) % 17) as f32 * 0.25 - 2.0;
    }
}

/// One timed measurement: median nanoseconds over `iters` calls of `f`,
/// plus allocator bytes attributed to a single (post-warm-up) call.
fn time_median<F: FnMut()>(iters: usize, mut f: F) -> (f64, u64) {
    f(); // warm up: populates the workspace pool and the icache
    let b0 = alloc_bytes();
    f();
    let bytes_per_call = alloc_bytes() - b0;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (samples[samples.len() / 2], bytes_per_call)
}

/// One GEMM benchmark row for the JSON report.
struct GemmRow {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    median_ns: f64,
    gflops: f64,
    alloc_bytes_per_call: u64,
}

fn gemm_gflops(m: usize, k: usize, n: usize, ns: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / ns
}

/// Benches one blocked-GEMM layout at `s`³.
fn bench_gemm(name: &str, s: usize, a_l: MatLayout, b_l: MatLayout, iters: usize) -> GemmRow {
    let mut a = vec![0.0f32; s * s];
    let mut b = vec![0.0f32; s * s];
    let mut c = vec![0.0f32; s * s];
    lcg_fill(&mut a, 1);
    lcg_fill(&mut b, 2);
    let (median_ns, bytes) = time_median(iters, || gemm(s, s, s, &a, a_l, &b, b_l, &mut c));
    GemmRow {
        name: format!("{name}_{s}"),
        m: s,
        k: s,
        n: s,
        median_ns,
        gflops: gemm_gflops(s, s, s, median_ns),
        alloc_bytes_per_call: bytes,
    }
}

/// Correctness gate: blocked GEMM (all layouts) vs the naive reference on
/// tile-unaligned shapes. Returns an error string on the first mismatch.
fn check_gemm_vs_naive() -> Result<(), String> {
    for &(m, k, n) in
        &[(1usize, 1usize, 1usize), (7, 3, 5), (9, 17, 33), (65, 70, 13), (70, 96, 70)]
    {
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        lcg_fill(&mut a, (m * 31 + n) as u64);
        lcg_fill(&mut b, (k * 17 + m) as u64);
        let mut want = vec![0.0f32; m * n];
        naive_ikj(m, k, n, &a, &b, &mut want);
        // Row-major transposes so the same product is expressible in
        // every layout the blocked kernel supports.
        let mut at = vec![0.0f32; m * k]; // [k, m]
        let mut bt = vec![0.0f32; k * n]; // [n, k]
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        type GemmCase<'a> = (&'a str, &'a [f32], MatLayout, &'a [f32], MatLayout);
        let cases: [GemmCase<'_>; 3] = [
            ("nn", &a, MatLayout::Normal, &b, MatLayout::Normal),
            ("tn", &at, MatLayout::Transposed, &b, MatLayout::Normal),
            ("nt", &a, MatLayout::Normal, &bt, MatLayout::Transposed),
        ];
        for (tag, av, al, bv, bl) in cases {
            let mut got = vec![0.0f32; m * n];
            gemm(m, k, n, av, al, bv, bl, &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                if (g - w).abs() > 1e-4 * (1.0 + w.abs()) {
                    return Err(format!("gemm_{tag} ({m}x{k}x{n}) mismatch at {i}: {g} vs {w}"));
                }
            }
        }
    }
    Ok(())
}

/// Correctness gate: im2col lowering vs the direct conv3d kernel.
fn check_im2col_vs_direct() -> Result<(), String> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for &(kd, kh, kw, cin, cout) in
        &[(1usize, 1, 1, 3usize, 5usize), (3, 3, 3, 2, 4), (1, 3, 3, 4, 2)]
    {
        let input = Tensor::randn(&[2, cin, 3, 4, 5], 1.0, &mut rng);
        let weight = Tensor::randn(&[cout, cin, kd, kh, kw], 1.0, &mut rng);
        let direct = conv3d(&input, &weight);
        let lowered = conv3d_im2col(&input, &weight);
        for (i, (a, b)) in direct.data().iter().zip(lowered.data()).enumerate() {
            if (a - b).abs() > 1e-4 * (1.0 + b.abs()) {
                return Err(format!(
                    "im2col vs direct ({kd}x{kh}x{kw}, cin={cin}, cout={cout}) mismatch at {i}: {a} vs {b}"
                ));
            }
        }
    }
    Ok(())
}

/// One `decode_values` benchmark row: `q` continuous point queries decoded
/// against a cached latent grid.
struct DecodeRow {
    queries: usize,
    median_ns: f64,
    points_per_s: f64,
    alloc_bytes_per_call: u64,
}

/// Times the serving split on a tiny frozen model: one U-Net encode (the
/// expensive encode-once half) and `decode_values` at several query-batch
/// sizes (the cheap decode-many half). The encode/decode ratio in the JSON
/// is the asymmetry the latent-context cache in `mfn-serve` exploits.
fn bench_decode(iters: usize) -> (f64, Vec<DecodeRow>) {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 32 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![32, 32];
    cfg.levels = 2;
    let in_channels = cfg.in_channels;
    let frozen = FrozenModel::from_model(MeshfreeFlowNet::new(cfg));
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let input = Tensor::randn(&[1, in_channels, 4, 4, 4], 1.0, &mut rng);
    let (encode_ns, _) = time_median(iters, || {
        std::hint::black_box(frozen.encode(&input));
    });
    let latent = frozen.encode(&input);
    let rows = [1usize, 8, 64, 512]
        .iter()
        .map(|&q| {
            let mut state = q as u64 * 7919 + 1;
            let queries: Vec<(usize, [f32; 3])> = (0..q)
                .map(|_| {
                    let mut coord = || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 40) as f32 / (1u64 << 24) as f32).clamp(0.0, 1.0)
                    };
                    (0usize, [coord(), coord(), coord()])
                })
                .collect();
            let (median_ns, bytes) = time_median(iters, || {
                std::hint::black_box(frozen.decode_values(&latent, queries.iter().copied()));
            });
            DecodeRow {
                queries: q,
                median_ns,
                points_per_s: q as f64 * 1e9 / median_ns,
                alloc_bytes_per_call: bytes,
            }
        })
        .collect();
    (encode_ns, rows)
}

/// The tiny training problem used for the one-train-step benchmark.
fn train_fixture() -> (Corpus, Trainer) {
    let sim =
        simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() }, 0.1, 9);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr, lr)]);
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 32 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![32, 32];
    cfg.levels = 2;
    let trainer = Trainer::new(
        MeshfreeFlowNet::new(cfg),
        TrainConfig { batch_size: 4, ..Default::default() },
    );
    (corpus, trainer)
}

/// Measured side of the pool on/off A/B.
struct TrainSide {
    median_ns: f64,
    alloc_bytes_per_step: u64,
    alloc_calls_per_step: u64,
    pool_hits: u64,
    pool_misses: u64,
}

/// Times one full gradient step (forward + backward + Adam) `iters` times
/// with the workspace pool in the given state.
fn bench_train_step(iters: usize, pool_on: bool) -> TrainSide {
    let (corpus, mut trainer) = train_fixture();
    let (hr, lr) = &corpus.pairs[0];
    let sampler = PatchSampler::new(hr, lr, trainer.model.cfg.patch);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let batch = make_batch(&sampler, 4, &mut rng);
    workspace::set_enabled(pool_on);
    workspace::reset_stats();
    trainer.step(&batch, corpus.params(0), corpus.stats); // warm up
    let b0 = alloc_bytes();
    let c0 = alloc_calls();
    trainer.step(&batch, corpus.params(0), corpus.stats);
    let alloc_bytes_per_step = alloc_bytes() - b0;
    let alloc_calls_per_step = alloc_calls() - c0;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        trainer.step(&batch, corpus.params(0), corpus.stats);
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let s = workspace::stats();
    workspace::set_enabled(true); // leave the process in the default state
    TrainSide {
        median_ns: samples[samples.len() / 2],
        alloc_bytes_per_step,
        alloc_calls_per_step,
        pool_hits: s.hits,
        pool_misses: s.misses,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut oracle = false;
    let mut out_path = String::from("BENCH_kernels.json");
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--oracle" => oracle = true,
            "--out" => {
                i += 1;
                out_path = argv.get(i).expect("--out needs a value").clone();
            }
            other => {
                eprintln!(
                    "unknown argument {other}\nusage: bench [--quick] [--oracle] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // ---- Differential oracle gate (--oracle): every optimized kernel vs
    // its scalar f64 reference twin, before any number is trusted ---------
    if oracle {
        eprintln!("[bench] running differential oracle (mfn-reftest) ...");
        let reports = mfn_reftest::run_all();
        for r in &reports {
            eprintln!("[oracle] {r}");
        }
        if !mfn_reftest::all_passed(&reports) {
            eprintln!(
                "[bench] FAIL: kernels diverged from reference; timings would be meaningless"
            );
            std::process::exit(1);
        }
    }

    // ---- Correctness gates (always, before any timing) -----------------
    eprintln!("[bench] checking blocked GEMM vs naive reference ...");
    if let Err(e) = check_gemm_vs_naive() {
        eprintln!("[bench] FAIL: {e}");
        std::process::exit(1);
    }
    eprintln!("[bench] checking im2col vs direct conv3d ...");
    if let Err(e) = check_im2col_vs_direct() {
        eprintln!("[bench] FAIL: {e}");
        std::process::exit(1);
    }

    // ---- Kernel benchmarks ---------------------------------------------
    let size = if quick { 128 } else { 256 };
    let iters = if quick { 11 } else { 25 };
    eprintln!("[bench] timing GEMM at {size}^3 ({iters} iters/layout) ...");
    let mut rows = vec![
        bench_gemm("gemm_nn", size, MatLayout::Normal, MatLayout::Normal, iters),
        bench_gemm("gemm_tn", size, MatLayout::Transposed, MatLayout::Normal, iters),
        bench_gemm("gemm_nt", size, MatLayout::Normal, MatLayout::Transposed, iters),
    ];
    // The frozen pre-optimization kernel at the same size.
    {
        let mut a = vec![0.0f32; size * size];
        let mut b = vec![0.0f32; size * size];
        let mut c = vec![0.0f32; size * size];
        lcg_fill(&mut a, 1);
        lcg_fill(&mut b, 2);
        let (median_ns, bytes) = time_median(iters, || naive_ikj(size, size, size, &a, &b, &mut c));
        rows.push(GemmRow {
            name: format!("gemm_naive_ikj_{size}"),
            m: size,
            k: size,
            n: size,
            median_ns,
            gflops: gemm_gflops(size, size, size, median_ns),
            alloc_bytes_per_call: bytes,
        });
    }
    let blocked = rows[0].gflops;
    let naive = rows.last().expect("naive row").gflops;
    let speedup = blocked / naive;
    eprintln!(
        "[bench] GEMM {size}^3: blocked {blocked:.1} GFLOP/s vs naive {naive:.1} ({speedup:.2}x)"
    );
    if !quick && speedup < 2.0 {
        eprintln!("[bench] FAIL: blocked GEMM speedup {speedup:.2}x < required 2x at {size}^3");
        std::process::exit(1);
    }

    // conv3d lowerings on a training-shaped layer.
    eprintln!("[bench] timing conv3d lowerings ...");
    let (cn, cin, cout, cs) =
        if quick { (2, 8, 8, [4usize, 8, 8]) } else { (4, 16, 16, [4, 16, 16]) };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let cinput = Tensor::randn(&[cn, cin, cs[0], cs[1], cs[2]], 1.0, &mut rng);
    let cweight = Tensor::randn(&[cout, cin, 3, 3, 3], 1.0, &mut rng);
    let conv_flops = 2.0 * (cn * cout * cin * 27 * cs[0] * cs[1] * cs[2]) as f64;
    let (direct_ns, direct_bytes) = time_median(iters, || {
        std::hint::black_box(conv3d(&cinput, &cweight));
    });
    let (lowered_ns, lowered_bytes) = time_median(iters, || {
        std::hint::black_box(conv3d_im2col(&cinput, &cweight));
    });

    // ---- Serving split: encode-once vs decode-many ---------------------
    eprintln!("[bench] timing frozen encode + decode_values ({iters} iters/size) ...");
    let (encode_ns, decode_rows) = bench_decode(iters);
    {
        let d1 = decode_rows.first().expect("decode rows");
        eprintln!(
            "[bench] encode {:.0} ns vs 1-query decode {:.0} ns ({:.0}x); \
             512-query decode {:.2} Mpts/s",
            encode_ns,
            d1.median_ns,
            encode_ns / d1.median_ns,
            decode_rows.last().expect("decode rows").points_per_s / 1e6
        );
    }

    // ---- One-train-step A/B: workspace pool on vs off ------------------
    let step_iters = if quick { 5 } else { 15 };
    eprintln!("[bench] timing one training step, pool ON ({step_iters} iters) ...");
    let pool_on = bench_train_step(step_iters, true);
    eprintln!("[bench] timing one training step, pool OFF ({step_iters} iters) ...");
    let pool_off = bench_train_step(step_iters, false);
    let alloc_drop = if pool_off.alloc_bytes_per_step > 0 {
        1.0 - pool_on.alloc_bytes_per_step as f64 / pool_off.alloc_bytes_per_step as f64
    } else {
        0.0
    };
    eprintln!(
        "[bench] train step heap churn: {} B with pool vs {} B without ({:.1}% drop)",
        pool_on.alloc_bytes_per_step,
        pool_off.alloc_bytes_per_step,
        100.0 * alloc_drop
    );

    // ---- JSON report ----------------------------------------------------
    let mut gemm_json = String::new();
    for (idx, r) in rows.iter().enumerate() {
        if idx > 0 {
            gemm_json.push_str(",\n");
        }
        gemm_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"median_ns\": {:.0}, \"gflops\": {:.2}, \"alloc_bytes_per_call\": {}}}",
            r.name, r.m, r.k, r.n, r.median_ns, r.gflops, r.alloc_bytes_per_call
        ));
    }
    let mut decode_json = String::new();
    for (idx, r) in decode_rows.iter().enumerate() {
        if idx > 0 {
            decode_json.push_str(",\n");
        }
        decode_json.push_str(&format!(
            "    {{\"queries\": {}, \"median_ns\": {:.0}, \"points_per_s\": {:.0}, \"alloc_bytes_per_call\": {}}}",
            r.queries, r.median_ns, r.points_per_s, r.alloc_bytes_per_call
        ));
    }
    let json = format!(
        "{{\n\
         \"schema\": \"mfn-bench/kernels/v1\",\n\
         \"mode\": \"{mode}\",\n\
         \"count_alloc\": {count_alloc},\n\
         \"threads\": {threads},\n\
         \"checks\": {{\"gemm_vs_naive\": \"ok\", \"im2col_vs_direct\": \"ok\"}},\n\
         \"gemm\": [\n{gemm_json}\n  ],\n\
         \"gemm_speedup_vs_naive\": {speedup:.3},\n\
         \"conv3d\": {{\n\
         \"shape\": {{\"n\": {cn}, \"cin\": {cin}, \"cout\": {cout}, \"spatial\": [{s0}, {s1}, {s2}], \"kernel\": [3, 3, 3]}},\n\
         \"direct\": {{\"median_ns\": {direct_ns:.0}, \"gflops\": {direct_gf:.2}, \"alloc_bytes_per_call\": {direct_bytes}}},\n\
         \"im2col\": {{\"median_ns\": {lowered_ns:.0}, \"gflops\": {lowered_gf:.2}, \"alloc_bytes_per_call\": {lowered_bytes}}}\n\
         }},\n\
         \"decode_values\": {{\n\
         \"encode_median_ns\": {encode_ns:.0},\n\
         \"encode_to_1query_decode_ratio\": {enc_dec_ratio:.1},\n\
         \"rows\": [\n{decode_json}\n  ]\n\
         }},\n\
         \"train_step\": {{\n\
         \"pool_on\": {{\"median_ns\": {on_ns:.0}, \"alloc_bytes\": {on_b}, \"alloc_calls\": {on_c}, \"pool_hits\": {on_h}, \"pool_misses\": {on_m}}},\n\
         \"pool_off\": {{\"median_ns\": {off_ns:.0}, \"alloc_bytes\": {off_b}, \"alloc_calls\": {off_c}, \"pool_hits\": {off_h}, \"pool_misses\": {off_m}}},\n\
         \"alloc_drop_ratio\": {alloc_drop:.4}\n\
         }}\n\
         }}\n",
        mode = if quick { "quick" } else { "full" },
        count_alloc = cfg!(feature = "count-alloc"),
        threads = mfn_tensor::effective_threads(),
        speedup = speedup,
        cn = cn,
        cin = cin,
        cout = cout,
        s0 = cs[0],
        s1 = cs[1],
        s2 = cs[2],
        direct_ns = direct_ns,
        direct_gf = conv_flops / direct_ns,
        lowered_ns = lowered_ns,
        lowered_gf = conv_flops / lowered_ns,
        encode_ns = encode_ns,
        enc_dec_ratio = encode_ns / decode_rows.first().expect("decode rows").median_ns,
        on_ns = pool_on.median_ns,
        on_b = pool_on.alloc_bytes_per_step,
        on_c = pool_on.alloc_calls_per_step,
        on_h = pool_on.pool_hits,
        on_m = pool_on.pool_misses,
        off_ns = pool_off.median_ns,
        off_b = pool_off.alloc_bytes_per_step,
        off_c = pool_off.alloc_calls_per_step,
        off_h = pool_off.pool_hits,
        off_m = pool_off.pool_misses,
    );
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("[bench] wrote {out_path}");
    println!("{json}");
}
