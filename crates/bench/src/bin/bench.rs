//! `bench` — kernel + training-step micro-benchmarks with JSON output.
//!
//! ```text
//! usage: bench [--quick] [--oracle] [--gate BASELINE.json] [--out PATH]
//! ```
//!
//! Measures the blocked GEMM (all three transpose layouts, plus a
//! std::thread row-block fan-out) against the pre-optimization naive
//! `ikj` kernel kept here as a frozen reference, the three conv3d
//! lowerings (direct, im2col, fused implicit-GEMM — forward and both
//! gradients), the bf16 vs f32 decode paths, and one full training step
//! with the workspace pool on vs off. Results land in
//! `BENCH_kernels.json` (default; `--out` overrides): median wall time,
//! GFLOP/s, heap bytes allocated per call (counted by the `count-alloc`
//! global allocator, on by default), and workspace-pool hit/miss
//! counters.
//!
//! The binary doubles as a regression gate: before timing anything it
//! re-checks the blocked GEMM against the naive reference on
//! tile-unaligned shapes and every conv3d lowering against the direct
//! kernel, and exits non-zero on any mismatch. `--oracle` additionally
//! runs the full mfn-reftest differential suite first. `--quick`
//! shrinks the problem sizes for CI; the full run additionally asserts
//! the ≥2× speedup the optimization is required to hold on the 256³
//! GEMM. `--gate BASELINE.json` compares this run's speedup *ratios*
//! (blocked/naive GEMM, implicit/direct conv) against a committed
//! baseline report and fails if either drops below 85% of it — ratios,
//! not absolute GFLOP/s, so the gate is insensitive to how fast the CI
//! machine is that day.

use mfn_core::{Corpus, FrozenModel, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer};
use mfn_data::{downsample, make_batch, Dataset, PatchSampler, PatchSpec, QueryStrategy};
use mfn_sample::{OctreeConfig, OctreeSampler};
use mfn_solver::{simulate, RbcConfig};
use mfn_tensor::{
    conv3d, conv3d_grad_input_direct, conv3d_grad_weight_direct, conv3d_im2col,
    conv3d_implicit_gemm, conv3d_implicit_grad_input, conv3d_implicit_grad_weight, gemm, workspace,
    Conv3dDims, MatLayout, Tensor,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Counting allocator: every heap allocation in the process adds to a
/// pair of atomics so benchmarks can report bytes-allocated-per-call.
/// The counters only track `alloc`/`realloc` growth — frees are not
/// subtracted, because "how much did the allocator have to hand out"
/// is exactly the churn the workspace pool exists to remove.
#[cfg(feature = "count-alloc")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static BYTES: AtomicU64 = AtomicU64::new(0);
    pub static CALLS: AtomicU64 = AtomicU64::new(0);

    pub struct Counting;

    // SAFETY: defers all allocation to `System`; the atomics only observe.
    unsafe impl GlobalAlloc for Counting {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
            BYTES.fetch_add(new_size.saturating_sub(l.size()) as u64, Ordering::Relaxed);
            CALLS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, new_size)
        }
    }

    #[global_allocator]
    static COUNTER: Counting = Counting;
}

/// Heap bytes handed out by the allocator so far (0 without `count-alloc`).
fn alloc_bytes() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        counting_alloc::BYTES.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// Allocation calls so far (0 without `count-alloc`).
fn alloc_calls() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        counting_alloc::CALLS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

/// The pre-optimization GEMM, frozen verbatim (minus rayon) from the seed
/// tree's `linalg::matmul`: row-major `ikj` with the zero-skip branch.
/// This is the baseline every speedup in the JSON is measured against.
fn naive_ikj(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for (i, out_row) in c.chunks_mut(n).enumerate() {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    }
}

/// Deterministic pseudo-random matrix data (no RNG dependency in the
/// timed path; quarter-integers keep f32 sums exactly representable).
fn lcg_fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 33) % 17) as f32 * 0.25 - 2.0;
    }
}

/// One timed measurement: `(median_ns, best_ns)` over `iters` calls of
/// `f`, plus allocator bytes attributed to a single (post-warm-up) call.
///
/// Both estimators are reported because they answer different questions on
/// a shared VM. Steal time inflates individual iterations by 30–40% in
/// bursts, and a burst spanning half the window drags the *median* with
/// it; the *minimum* is the iterations the hypervisor left alone — the
/// speed of the code itself. GFLOP/s figures and speedup ratios therefore
/// come from `best_ns`; `median_ns` stays in the report as the
/// what-you'll-typically-see number.
fn time_samples<F: FnMut()>(iters: usize, mut f: F) -> (f64, f64, u64) {
    f(); // warm up: populates the workspace pool and the icache
    let b0 = alloc_bytes();
    f();
    let bytes_per_call = alloc_bytes() - b0;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (samples[samples.len() / 2], samples[0], bytes_per_call)
}

/// Interleaved timing of several variants: each iteration times one call
/// of every variant back to back, so all variants sample the same
/// hypervisor steal phases and the ratio of any two minima is
/// machine-speed robust (the same pairing the bf16 decode rows use).
/// Timing them in separate loops instead lets one variant's minimum land
/// in a quiet window the other never saw, which on this VM moves
/// speedup ratios by ±20% run to run. Returns `(median_ns, best_ns)` per
/// variant, in input order.
fn time_interleaved(iters: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<(f64, f64)> {
    for f in fs.iter_mut() {
        f(); // warm up: workspace pool, icache
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(iters); fs.len()];
    for _ in 0..iters {
        for (f, s) in fs.iter_mut().zip(samples.iter_mut()) {
            let t = Instant::now();
            f();
            s.push(t.elapsed().as_nanos() as f64);
        }
    }
    samples
        .into_iter()
        .map(|mut s| {
            s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
            (s[s.len() / 2], s[0])
        })
        .collect()
}

/// Allocator bytes attributed to one (post-warm-up) call of `f`.
fn bytes_per_call<F: FnMut()>(mut f: F) -> u64 {
    f();
    let b0 = alloc_bytes();
    f();
    alloc_bytes() - b0
}

/// One GEMM benchmark row for the JSON report.
struct GemmRow {
    name: String,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    median_ns: f64,
    best_ns: f64,
    gflops: f64,
    alloc_bytes_per_call: u64,
}

fn gemm_gflops(m: usize, k: usize, n: usize, ns: f64) -> f64 {
    (2.0 * m as f64 * k as f64 * n as f64) / ns
}

/// Benches one blocked-GEMM layout at `s`³.
fn bench_gemm(name: &str, s: usize, a_l: MatLayout, b_l: MatLayout, iters: usize) -> GemmRow {
    let mut a = vec![0.0f32; s * s];
    let mut b = vec![0.0f32; s * s];
    let mut c = vec![0.0f32; s * s];
    lcg_fill(&mut a, 1);
    lcg_fill(&mut b, 2);
    let (median_ns, best_ns, bytes) =
        time_samples(iters, || gemm(s, s, s, &a, a_l, &b, b_l, &mut c));
    GemmRow {
        name: format!("{name}_{s}"),
        m: s,
        k: s,
        n: s,
        threads: 1,
        median_ns,
        best_ns,
        gflops: gemm_gflops(s, s, s, best_ns),
        alloc_bytes_per_call: bytes,
    }
}

/// Benches the blocked GEMM with `C`'s row blocks fanned across OS threads
/// (one `gemm` call per block — the same macro-kernel, independent output
/// slices, no synchronization inside the timed region). The vendored rayon
/// is a sequential shim, so this is the bench's own `std::thread::scope`
/// fan-out; `threads` in the row is the actual spawn count, which on a
/// single-core CI box is honestly 1.
fn bench_gemm_mt(s: usize, iters: usize) -> GemmRow {
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let rows_per = s.div_ceil(threads);
    let mut a = vec![0.0f32; s * s];
    let mut b = vec![0.0f32; s * s];
    let mut c = vec![0.0f32; s * s];
    lcg_fill(&mut a, 3);
    lcg_fill(&mut b, 4);
    let (median_ns, best_ns, bytes) = time_samples(iters, || {
        let (a, b) = (a.as_slice(), b.as_slice());
        std::thread::scope(|scope| {
            for (ti, c_block) in c.chunks_mut(rows_per * s).enumerate() {
                let mb = c_block.len() / s;
                let a_block = &a[ti * rows_per * s..ti * rows_per * s + mb * s];
                scope.spawn(move || {
                    gemm(mb, s, s, a_block, MatLayout::Normal, b, MatLayout::Normal, c_block)
                });
            }
        });
    });
    GemmRow {
        name: format!("gemm_nn_mt_{s}"),
        m: s,
        k: s,
        n: s,
        threads,
        median_ns,
        best_ns,
        gflops: gemm_gflops(s, s, s, best_ns),
        alloc_bytes_per_call: bytes,
    }
}

/// Correctness gate: blocked GEMM (all layouts) vs the naive reference on
/// tile-unaligned shapes. Returns an error string on the first mismatch.
fn check_gemm_vs_naive() -> Result<(), String> {
    for &(m, k, n) in
        &[(1usize, 1usize, 1usize), (7, 3, 5), (9, 17, 33), (65, 70, 13), (70, 96, 70)]
    {
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        lcg_fill(&mut a, (m * 31 + n) as u64);
        lcg_fill(&mut b, (k * 17 + m) as u64);
        let mut want = vec![0.0f32; m * n];
        naive_ikj(m, k, n, &a, &b, &mut want);
        // Row-major transposes so the same product is expressible in
        // every layout the blocked kernel supports.
        let mut at = vec![0.0f32; m * k]; // [k, m]
        let mut bt = vec![0.0f32; k * n]; // [n, k]
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        type GemmCase<'a> = (&'a str, &'a [f32], MatLayout, &'a [f32], MatLayout);
        let cases: [GemmCase<'_>; 3] = [
            ("nn", &a, MatLayout::Normal, &b, MatLayout::Normal),
            ("tn", &at, MatLayout::Transposed, &b, MatLayout::Normal),
            ("nt", &a, MatLayout::Normal, &bt, MatLayout::Transposed),
        ];
        for (tag, av, al, bv, bl) in cases {
            let mut got = vec![0.0f32; m * n];
            gemm(m, k, n, av, al, bv, bl, &mut got);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                if (g - w).abs() > 1e-4 * (1.0 + w.abs()) {
                    return Err(format!("gemm_{tag} ({m}x{k}x{n}) mismatch at {i}: {g} vs {w}"));
                }
            }
        }
    }
    Ok(())
}

/// Correctness gate: the im2col and fused implicit-GEMM lowerings vs the
/// direct conv3d kernel — forward, and the implicit gradient kernels vs
/// their direct twins.
fn check_lowerings_vs_direct() -> Result<(), String> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let close = |tag: &str, got: &Tensor, want: &Tensor| -> Result<(), String> {
        for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
            if (g - w).abs() > 1e-4 * (1.0 + w.abs()) {
                return Err(format!("{tag} mismatch at {i}: {g} vs {w}"));
            }
        }
        Ok(())
    };
    for &(kd, kh, kw, cin, cout) in
        &[(1usize, 1, 1, 3usize, 5usize), (3, 3, 3, 2, 4), (1, 3, 3, 4, 2)]
    {
        let tag = format!("{kd}x{kh}x{kw}, cin={cin}, cout={cout}");
        let input = Tensor::randn(&[2, cin, 3, 4, 5], 1.0, &mut rng);
        let weight = Tensor::randn(&[cout, cin, kd, kh, kw], 1.0, &mut rng);
        let direct = conv3d(&input, &weight);
        close(&format!("im2col vs direct ({tag})"), &conv3d_im2col(&input, &weight), &direct)?;
        close(
            &format!("implicit_gemm vs direct ({tag})"),
            &conv3d_implicit_gemm(&input, &weight),
            &direct,
        )?;
        let dims = Conv3dDims::infer(&input, &weight);
        let gout = Tensor::randn(&[2, cout, 3, 4, 5], 1.0, &mut rng);
        close(
            &format!("implicit grad_input vs direct ({tag})"),
            &conv3d_implicit_grad_input(&gout, &weight, dims),
            &conv3d_grad_input_direct(&gout, &weight, dims),
        )?;
        close(
            &format!("implicit grad_weight vs direct ({tag})"),
            &conv3d_implicit_grad_weight(&input, &gout, dims),
            &conv3d_grad_weight_direct(&input, &gout, dims),
        )?;
    }
    Ok(())
}

/// One `decode_values` benchmark row: `q` continuous point queries decoded
/// against a cached latent grid.
struct DecodeRow {
    queries: usize,
    median_ns: f64,
    best_ns: f64,
    points_per_s: f64,
    alloc_bytes_per_call: u64,
}

/// Everything the serving-split benchmark measures: the encode cost, the
/// f32 decode rows, their bf16-quantized twins (store tier and compute
/// tier), and the resident bf16 weight bytes.
struct DecodeBench {
    encode_ns: f64,
    rows: Vec<DecodeRow>,
    bf16_rows: Vec<DecodeRow>,
    bf16_compute_rows: Vec<DecodeRow>,
    bf16_weight_bytes: usize,
}

/// Times the serving split on a tiny frozen model: one U-Net encode (the
/// expensive encode-once half) and `decode_values` at several query-batch
/// sizes (the cheap decode-many half), first at full precision, then
/// through the bf16-*store* decoder on the same weights, then through the
/// bf16-*compute* decoder (a twin model of identical shape, since one
/// decoder holds one tier). The encode/decode ratio in the JSON is the
/// asymmetry the latent-context cache in `mfn-serve` exploits; the bf16
/// rows are the µs/query the `--bf16-decode` / `--bf16-compute` serve
/// flags buy.
fn bench_decode(iters: usize) -> DecodeBench {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 32 };
    cfg.base_channels = 4;
    // Serving-sized decoder: with latent 32 and two 128-wide hidden layers
    // the f32 weight store (~85 KB) spills a 32-48 KB L1d while the bf16
    // copy (~43 KB) fits, so the reduced-precision rows measure the cache
    // regime the quantized path is built for rather than L1-resident noise.
    cfg.latent_channels = 32;
    cfg.mlp_hidden = vec![128, 128];
    cfg.levels = 2;
    let in_channels = cfg.in_channels;
    let mut frozen = FrozenModel::from_model(MeshfreeFlowNet::new(cfg.clone()));
    // A decoder holds exactly one quantization tier, so the compute tier
    // gets a shape-identical twin model; decode cost depends on the layer
    // shapes, not the weight values, so the comparison stays apples-to-
    // apples as long as all three calls interleave in one loop.
    let mut frozen_c = FrozenModel::from_model(MeshfreeFlowNet::new(cfg));
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let input = Tensor::randn(&[1, in_channels, 4, 4, 4], 1.0, &mut rng);
    let (encode_ns, _, _) = time_samples(iters, || {
        std::hint::black_box(frozen.encode(&input));
    });
    let latent = frozen.encode(&input);
    let latent_c = frozen_c.encode(&input);
    // Quantize up front: `decode_values` then takes the bf16 path while
    // `decode_values_exact` stays f32, so both variants run on the SAME
    // model object and can be timed in one interleaved loop. Alternating
    // the calls per iteration means hypervisor steal phases hit both paths
    // equally — comparing the two minima cancels machine-speed drift that
    // timing the paths in separate windows would bake into the ratio.
    frozen.quantize_decoder();
    frozen_c.quantize_decoder_compute();
    let mut rows = Vec::new();
    let mut bf16_rows = Vec::new();
    let mut bf16_compute_rows = Vec::new();
    for &q in &[1usize, 8, 64, 512] {
        let mut state = q as u64 * 7919 + 1;
        let queries: Vec<(usize, [f32; 3])> = (0..q)
            .map(|_| {
                let mut coord = || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 40) as f32 / (1u64 << 24) as f32).clamp(0.0, 1.0)
                };
                (0usize, [coord(), coord(), coord()])
            })
            .collect();
        let f32_call = || {
            std::hint::black_box(frozen.decode_values_exact(&latent, queries.iter().copied()));
        };
        let bf16_call = || {
            std::hint::black_box(frozen.decode_values(&latent, queries.iter().copied()));
        };
        let bf16c_call = || {
            std::hint::black_box(frozen_c.decode_values(&latent_c, queries.iter().copied()));
        };
        f32_call(); // warm up all paths (workspace pool, icache)
        bf16_call();
        bf16c_call();
        let b0 = alloc_bytes();
        f32_call();
        let f32_bytes = alloc_bytes() - b0;
        let b0 = alloc_bytes();
        bf16_call();
        let bf16_bytes = alloc_bytes() - b0;
        let b0 = alloc_bytes();
        bf16c_call();
        let bf16c_bytes = alloc_bytes() - b0;
        let mut f32_samples = Vec::with_capacity(iters);
        let mut bf16_samples = Vec::with_capacity(iters);
        let mut bf16c_samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            f32_call();
            f32_samples.push(t.elapsed().as_nanos() as f64);
            let t = Instant::now();
            bf16_call();
            bf16_samples.push(t.elapsed().as_nanos() as f64);
            let t = Instant::now();
            bf16c_call();
            bf16c_samples.push(t.elapsed().as_nanos() as f64);
        }
        let row = |mut samples: Vec<f64>, bytes: u64| {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
            let (median_ns, best_ns) = (samples[samples.len() / 2], samples[0]);
            DecodeRow {
                queries: q,
                median_ns,
                best_ns,
                points_per_s: q as f64 * 1e9 / best_ns,
                alloc_bytes_per_call: bytes,
            }
        };
        rows.push(row(f32_samples, f32_bytes));
        bf16_rows.push(row(bf16_samples, bf16_bytes));
        bf16_compute_rows.push(row(bf16c_samples, bf16c_bytes));
    }
    DecodeBench {
        encode_ns,
        rows,
        bf16_rows,
        bf16_compute_rows,
        bf16_weight_bytes: frozen.quantized_weight_bytes(),
    }
}

/// Measured sampling rows: uniform vs residual-guided adaptive query
/// draws, plus the per-step octree update (EMA feedback + split/merge).
struct SamplingBench {
    queries: usize,
    uniform_median_ns: f64,
    uniform_best_ns: f64,
    adaptive_median_ns: f64,
    adaptive_best_ns: f64,
    leaves: usize,
    update_median_ns: f64,
    update_best_ns: f64,
}

impl SamplingBench {
    /// Adaptive draw cost relative to uniform (1.0 = free); the gated ratio.
    fn overhead(&self) -> f64 {
        self.adaptive_best_ns / self.uniform_best_ns
    }
}

/// Builds an octree pre-warmed to a realistic refined shape (residual mass
/// concentrated near one wall, the way the equation loss behaves on RBC)
/// so the CDF walk in the timed draws crosses a split tree, not the root.
fn warmed_tree(queries: usize) -> OctreeSampler {
    let mut tree = OctreeSampler::new(OctreeConfig { min_count: 32, ..OctreeConfig::default() });
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for _ in 0..64 {
        let draws = tree.draw_queries(queries, &mut rng);
        let points: Vec<[f32; 3]> = draws.iter().map(|d| d.local).collect();
        let residuals: Vec<f32> =
            points.iter().map(|p| if p[1] < 0.2 { 1.0 } else { 0.05 }).collect();
        tree.update(&points, &residuals);
    }
    tree
}

/// Times uniform vs adaptive query draws interleaved (their quotient is the
/// gated `adaptive_overhead`), then the per-step tree update on its own.
fn bench_sampling(iters: usize) -> SamplingBench {
    let q = 256usize;
    let mut tree = warmed_tree(q);
    let leaves = tree.leaf_count();
    let mut uniform = mfn_data::UniformQueries;
    let mut rng_u = ChaCha8Rng::seed_from_u64(12);
    let mut rng_a = ChaCha8Rng::seed_from_u64(13);
    let timings = time_interleaved(
        iters,
        &mut [
            &mut || {
                std::hint::black_box(uniform.draw_queries(q, &mut rng_u));
            },
            &mut || {
                std::hint::black_box(tree.draw_queries(q, &mut rng_a));
            },
        ],
    );
    // Fixed feedback batch: the update cost is what every adaptive training
    // step pays on top of the uniform path's loss computation.
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let draws = tree.draw_queries(q, &mut rng);
    let points: Vec<[f32; 3]> = draws.iter().map(|d| d.local).collect();
    let residuals: Vec<f32> = points.iter().map(|p| if p[1] < 0.2 { 1.0 } else { 0.05 }).collect();
    let (update_median_ns, update_best_ns, _) =
        time_samples(iters, || tree.update(&points, &residuals));
    SamplingBench {
        queries: q,
        uniform_median_ns: timings[0].0,
        uniform_best_ns: timings[0].1,
        adaptive_median_ns: timings[1].0,
        adaptive_best_ns: timings[1].1,
        leaves,
        update_median_ns,
        update_best_ns,
    }
}

/// The tiny training problem used for the one-train-step benchmark.
fn train_fixture() -> (Corpus, Trainer) {
    let sim =
        simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() }, 0.1, 9);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr, lr)]);
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 32 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![32, 32];
    cfg.levels = 2;
    let trainer = Trainer::new(
        MeshfreeFlowNet::new(cfg),
        TrainConfig { batch_size: 4, ..Default::default() },
    );
    (corpus, trainer)
}

/// Measured side of the pool on/off A/B.
struct TrainSide {
    median_ns: f64,
    alloc_bytes_per_step: u64,
    alloc_calls_per_step: u64,
    pool_hits: u64,
    pool_misses: u64,
}

/// Times one full gradient step (forward + backward + Adam) `iters` times
/// with the workspace pool in the given state.
fn bench_train_step(iters: usize, pool_on: bool) -> TrainSide {
    let (corpus, mut trainer) = train_fixture();
    let (hr, lr) = &corpus.pairs[0];
    let sampler = PatchSampler::new(hr, lr, trainer.model.cfg.patch);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let batch = make_batch(&sampler, 4, &mut rng);
    workspace::set_enabled(pool_on);
    workspace::reset_stats();
    trainer.step(&batch, corpus.params(0), corpus.stats); // warm up
    let b0 = alloc_bytes();
    let c0 = alloc_calls();
    trainer.step(&batch, corpus.params(0), corpus.stats);
    let alloc_bytes_per_step = alloc_bytes() - b0;
    let alloc_calls_per_step = alloc_calls() - c0;
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        trainer.step(&batch, corpus.params(0), corpus.stats);
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let s = workspace::stats();
    workspace::set_enabled(true); // leave the process in the default state
    TrainSide {
        median_ns: samples[samples.len() / 2],
        alloc_bytes_per_step,
        alloc_calls_per_step,
        pool_hits: s.hits,
        pool_misses: s.misses,
    }
}

/// The subset of a committed `BENCH_kernels.json` the `--gate` compare
/// reads (extra fields in the baseline are ignored).
#[derive(serde::Deserialize)]
struct GateBaseline {
    gemm_speedup_vs_naive: f64,
    conv3d: GateConv,
}

/// Baseline conv3d rows the gate's ratio is built from.
#[derive(serde::Deserialize)]
struct GateConv {
    direct: GateKernel,
    implicit_gemm: GateKernel,
}

/// One baseline kernel row: only the GFLOP/s matter to the gate.
#[derive(serde::Deserialize)]
struct GateKernel {
    gflops: f64,
}

/// Optional `sampling` section of a committed baseline. Parsed separately
/// from [`GateBaseline`] so reports written before the adaptive sampler
/// landed still gate the kernel ratios — the sampling leg is just skipped.
#[derive(serde::Deserialize)]
struct GateSamplingDoc {
    sampling: GateSampling,
}

/// Baseline sampling row: only the overhead ratio matters to the gate.
#[derive(serde::Deserialize)]
struct GateSampling {
    adaptive_overhead: f64,
}

/// Optional bf16-compute section of a committed baseline. Parsed separately
/// (the [`GateSamplingDoc`] pattern) so reports written before the compute
/// tier landed still gate everything else — this leg is just skipped.
#[derive(serde::Deserialize)]
struct GateBf16Doc {
    decode_values: GateBf16Decode,
}

/// Baseline bf16-compute row: the 512-query speedup ratio and whether the
/// baseline machine ran the native `vdpbf16ps` route. Ratios from a native
/// run and an emulated run are not comparable, so the flag gates the gate.
#[derive(serde::Deserialize)]
struct GateBf16Decode {
    bf16_compute_native: bool,
    bf16_compute_speedup_512q: f64,
}

/// `--gate` floor: each speedup ratio must hold at least this fraction of
/// the committed baseline's.
const GATE_FRACTION: f64 = 0.85;

/// Compares this run's speedup *ratios* (blocked/naive GEMM, implicit/
/// direct conv) against a committed baseline report. Ratios divide out the
/// machine's absolute speed, so the gate catches codegen/blocking
/// regressions without tripping on a slow CI host.
///
/// A shared VM can lose 30–40% of a single measurement window to steal
/// time, and the loss hits numerator and denominator unevenly — so a ratio
/// below the floor is re-measured in up to two fresh windows (`remeasure`)
/// and the gate keeps each ratio's best window before declaring a
/// regression. A real codegen regression is below the floor in every
/// window; a noise burst is not.
fn run_gate(
    path: &str,
    baseline_text: &str,
    first: (f64, f64),
    mut remeasure: impl FnMut() -> (f64, f64),
) -> Result<(), String> {
    let base: GateBaseline =
        serde_json::from_str(baseline_text).map_err(|e| format!("parse {path}: {e}"))?;
    let base_conv = base.conv3d.implicit_gemm.gflops / base.conv3d.direct.gflops;
    let floors = (GATE_FRACTION * base.gemm_speedup_vs_naive, GATE_FRACTION * base_conv);
    let (mut gemm_now, mut conv_now) = first;
    for attempt in 0..3 {
        eprintln!(
            "[gate] gemm blocked/naive: now {gemm_now:.2}x vs baseline {:.2}x (floor {:.2}x)",
            base.gemm_speedup_vs_naive, floors.0
        );
        eprintln!(
            "[gate] conv3d implicit/direct: now {conv_now:.2}x vs baseline {base_conv:.2}x \
             (floor {:.2}x)",
            floors.1
        );
        if gemm_now >= floors.0 && conv_now >= floors.1 {
            return Ok(());
        }
        if attempt < 2 {
            eprintln!("[gate] below floor; re-measuring in a fresh window ...");
            // Let a scheduler/steal burst drain before the next window.
            std::thread::sleep(std::time::Duration::from_millis(500));
            let (g, c) = remeasure();
            gemm_now = gemm_now.max(g);
            conv_now = conv_now.max(c);
        }
    }
    let (what, now, floor) = if gemm_now < floors.0 {
        ("gemm blocked/naive", gemm_now, floors.0)
    } else {
        ("conv3d implicit/direct", conv_now, floors.1)
    };
    Err(format!(
        "{what} speedup {now:.2}x stayed below {GATE_FRACTION}x baseline ({floor:.2}x) \
         across 3 measurement windows"
    ))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut oracle = false;
    let mut gate_path: Option<String> = None;
    let mut out_path = String::from("BENCH_kernels.json");
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--oracle" => oracle = true,
            "--gate" => {
                i += 1;
                gate_path = Some(argv.get(i).expect("--gate needs a baseline path").clone());
            }
            "--out" => {
                i += 1;
                out_path = argv.get(i).expect("--out needs a value").clone();
            }
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: bench [--quick] [--oracle] [--gate BASELINE.json] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Read the gate baseline up front: fails fast on a bad path, and stays
    // correct when --gate and --out name the same file (CI gates against
    // the committed report, then overwrites it with this run's).
    let gate_baseline = gate_path.as_ref().map(|p| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("[bench] FAIL: read gate baseline {p}: {e}");
            std::process::exit(1);
        })
    });

    // ---- Differential oracle gate (--oracle): every optimized kernel vs
    // its scalar f64 reference twin, before any number is trusted ---------
    if oracle {
        eprintln!("[bench] running differential oracle (mfn-reftest) ...");
        let reports = mfn_reftest::run_all();
        for r in &reports {
            eprintln!("[oracle] {r}");
        }
        if !mfn_reftest::all_passed(&reports) {
            eprintln!(
                "[bench] FAIL: kernels diverged from reference; timings would be meaningless"
            );
            std::process::exit(1);
        }
    }

    // ---- Correctness gates (always, before any timing) -----------------
    eprintln!("[bench] checking blocked GEMM vs naive reference ...");
    if let Err(e) = check_gemm_vs_naive() {
        eprintln!("[bench] FAIL: {e}");
        std::process::exit(1);
    }
    eprintln!("[bench] checking conv3d lowerings vs direct ...");
    if let Err(e) = check_lowerings_vs_direct() {
        eprintln!("[bench] FAIL: {e}");
        std::process::exit(1);
    }

    // ---- Kernel benchmarks ---------------------------------------------
    let size = if quick { 128 } else { 256 };
    // Full mode samples the cheap gemm/conv sections hard (each call is
    // 0.2-1.5 ms, so 75 iterations still costs well under a second) because
    // the minimum estimator needs at least one call inside a hypervisor
    // quiet window; the expensive decode rows keep a smaller count.
    let iters = if quick { 11 } else { 75 };
    let decode_iters = if quick { 11 } else { 25 };
    eprintln!("[bench] timing GEMM at {size}^3 ({iters} iters/layout) ...");
    // The blocked nn layout and the frozen pre-optimization kernel are
    // timed interleaved because their quotient is the gated
    // `gemm_speedup_vs_naive` ratio.
    let (nn_row, naive_row) = {
        let mut a = vec![0.0f32; size * size];
        let mut b = vec![0.0f32; size * size];
        let mut c_nn = vec![0.0f32; size * size];
        let mut c_naive = vec![0.0f32; size * size];
        lcg_fill(&mut a, 1);
        lcg_fill(&mut b, 2);
        let nn_bytes = bytes_per_call(|| {
            gemm(size, size, size, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c_nn)
        });
        let naive_bytes = bytes_per_call(|| naive_ikj(size, size, size, &a, &b, &mut c_naive));
        let timings = time_interleaved(
            iters,
            &mut [
                &mut || {
                    gemm(size, size, size, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c_nn)
                },
                &mut || naive_ikj(size, size, size, &a, &b, &mut c_naive),
            ],
        );
        let row = |name: &str, (median_ns, best_ns): (f64, f64), bytes| GemmRow {
            name: format!("{name}_{size}"),
            m: size,
            k: size,
            n: size,
            threads: 1,
            median_ns,
            best_ns,
            gflops: gemm_gflops(size, size, size, best_ns),
            alloc_bytes_per_call: bytes,
        };
        (row("gemm_nn", timings[0], nn_bytes), row("gemm_naive_ikj", timings[1], naive_bytes))
    };
    let rows = [
        nn_row,
        bench_gemm("gemm_tn", size, MatLayout::Transposed, MatLayout::Normal, iters),
        bench_gemm("gemm_nt", size, MatLayout::Normal, MatLayout::Transposed, iters),
        bench_gemm_mt(size, iters),
        naive_row,
    ];
    let blocked = rows[0].gflops;
    let naive = rows.last().expect("naive row").gflops;
    let speedup = blocked / naive;
    eprintln!(
        "[bench] GEMM {size}^3: blocked {blocked:.1} GFLOP/s vs naive {naive:.1} ({speedup:.2}x)"
    );
    if !quick && speedup < 2.0 {
        eprintln!("[bench] FAIL: blocked GEMM speedup {speedup:.2}x < required 2x at {size}^3");
        std::process::exit(1);
    }

    // conv3d lowerings on a training-shaped layer: forward through all
    // three paths, gradients through the fused implicit-GEMM kernels.
    eprintln!("[bench] timing conv3d lowerings ...");
    let (cn, cin, cout, cs) =
        if quick { (2, 8, 8, [4usize, 8, 8]) } else { (4, 16, 16, [4, 16, 16]) };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let cinput = Tensor::randn(&[cn, cin, cs[0], cs[1], cs[2]], 1.0, &mut rng);
    let cweight = Tensor::randn(&[cout, cin, 3, 3, 3], 1.0, &mut rng);
    let conv_flops = 2.0 * (cn * cout * cin * 27 * cs[0] * cs[1] * cs[2]) as f64;
    let cdims = Conv3dDims::infer(&cinput, &cweight);
    let cgout = Tensor::randn(&[cn, cout, cs[0], cs[1], cs[2]], 1.0, &mut rng);
    // All five variants interleave in one loop: direct/implicit is the
    // gated ratio and implicit/im2col the headline speedup, so their
    // minima must come from the same steal-phase distribution.
    let direct_bytes = bytes_per_call(|| {
        std::hint::black_box(conv3d(&cinput, &cweight));
    });
    let lowered_bytes = bytes_per_call(|| {
        std::hint::black_box(conv3d_im2col(&cinput, &cweight));
    });
    let implicit_bytes = bytes_per_call(|| {
        std::hint::black_box(conv3d_implicit_gemm(&cinput, &cweight));
    });
    let gi_bytes = bytes_per_call(|| {
        std::hint::black_box(conv3d_implicit_grad_input(&cgout, &cweight, cdims));
    });
    let gw_bytes = bytes_per_call(|| {
        std::hint::black_box(conv3d_implicit_grad_weight(&cinput, &cgout, cdims));
    });
    let conv_timings = time_interleaved(
        iters,
        &mut [
            &mut || {
                std::hint::black_box(conv3d(&cinput, &cweight));
            },
            &mut || {
                std::hint::black_box(conv3d_im2col(&cinput, &cweight));
            },
            &mut || {
                std::hint::black_box(conv3d_implicit_gemm(&cinput, &cweight));
            },
            &mut || {
                std::hint::black_box(conv3d_implicit_grad_input(&cgout, &cweight, cdims));
            },
            &mut || {
                std::hint::black_box(conv3d_implicit_grad_weight(&cinput, &cgout, cdims));
            },
        ],
    );
    let (direct_med, direct_ns) = conv_timings[0];
    let (lowered_med, lowered_ns) = conv_timings[1];
    let (implicit_med, implicit_ns) = conv_timings[2];
    let (gi_med, gi_ns) = conv_timings[3];
    let (gw_med, gw_ns) = conv_timings[4];
    let conv_speedup = lowered_ns / implicit_ns;
    eprintln!(
        "[bench] conv3d fwd: direct {:.2} / im2col {:.2} / implicit {:.2} GFLOP/s \
         ({conv_speedup:.2}x vs im2col); grads implicit {:.2} / {:.2}",
        conv_flops / direct_ns,
        conv_flops / lowered_ns,
        conv_flops / implicit_ns,
        conv_flops / gi_ns,
        conv_flops / gw_ns,
    );

    // ---- Serving split: encode-once vs decode-many, f32 vs bf16 --------
    eprintln!("[bench] timing frozen encode + decode_values ({decode_iters} iters/size) ...");
    let decode = bench_decode(decode_iters);
    let (encode_ns, decode_rows) = (decode.encode_ns, &decode.rows);
    // Two bf16 headlines for the two serving regimes. At 1 query the f32
    // path re-packs the whole decoder weight store per call while the bf16
    // store is pre-packed at quantize time, so the win there is structural;
    // at 512 queries the MLP GEMM (8 stencil rows per query) dominates and
    // both paths run the same f32-accumulation micro-kernels, so bf16 can
    // only match f32 there while halving resident weight bytes.
    let bf16_speedup_1q = decode_rows.first().expect("decode rows").best_ns
        / decode.bf16_rows.first().expect("bf16 decode rows").best_ns;
    let bf16_speedup = decode_rows.last().expect("decode rows").best_ns
        / decode.bf16_rows.last().expect("bf16 decode rows").best_ns;
    // The compute tier's headline lives where its win is architectural: at
    // large query batches the MLP GEMM dominates and `vdpbf16ps` retires a
    // 2-deep dot product per lane-instruction, so on avx512bf16 hardware the
    // 64- and 512-query ratios are the ones the issue's 1.5x floor is about.
    // On hardware without the extension these ratios measure the emulation
    // (typically < 1x) — the native flag in the JSON says which one it was.
    let row_speedup = |i: usize| {
        decode_rows.get(i).expect("decode rows").best_ns
            / decode.bf16_compute_rows.get(i).expect("bf16 compute rows").best_ns
    };
    let bf16_compute_speedup_64q = row_speedup(2);
    let bf16_compute_speedup_512q = row_speedup(3);
    let bf16_compute_native = mfn_tensor::bf16_compute_is_native();
    {
        let d1 = decode_rows.first().expect("decode rows");
        eprintln!(
            "[bench] encode {:.0} ns vs 1-query decode {:.0} ns ({:.0}x); \
             1-query bf16 {bf16_speedup_1q:.2}x; \
             512-query decode {:.2} Mpts/s f32, {:.2} Mpts/s bf16 ({bf16_speedup:.2}x), \
             {:.2} Mpts/s bf16-compute ({bf16_compute_speedup_512q:.2}x, native: \
             {bf16_compute_native})",
            encode_ns,
            d1.median_ns,
            encode_ns / d1.median_ns,
            decode_rows.last().expect("decode rows").points_per_s / 1e6,
            decode.bf16_rows.last().expect("bf16 decode rows").points_per_s / 1e6,
            decode.bf16_compute_rows.last().expect("bf16 compute rows").points_per_s / 1e6,
        );
    }

    // ---- One-train-step A/B: workspace pool on vs off ------------------
    let step_iters = if quick { 5 } else { 15 };
    eprintln!("[bench] timing one training step, pool ON ({step_iters} iters) ...");
    let pool_on = bench_train_step(step_iters, true);
    eprintln!("[bench] timing one training step, pool OFF ({step_iters} iters) ...");
    let pool_off = bench_train_step(step_iters, false);
    let alloc_drop = if pool_off.alloc_bytes_per_step > 0 {
        1.0 - pool_on.alloc_bytes_per_step as f64 / pool_off.alloc_bytes_per_step as f64
    } else {
        0.0
    };
    eprintln!(
        "[bench] train step heap churn: {} B with pool vs {} B without ({:.1}% drop)",
        pool_on.alloc_bytes_per_step,
        pool_off.alloc_bytes_per_step,
        100.0 * alloc_drop
    );

    // ---- Query sampling: uniform vs residual-guided adaptive draws ------
    eprintln!("[bench] timing query sampling, uniform vs adaptive ({iters} iters) ...");
    let sampling = bench_sampling(iters);
    eprintln!(
        "[bench] sampling ({} pts/draw): uniform {:.1} / adaptive {:.1} Mpts/s \
         ({:.2}x overhead, {} leaves); tree update {:.0} ns/step",
        sampling.queries,
        sampling.queries as f64 * 1e3 / sampling.uniform_best_ns,
        sampling.queries as f64 * 1e3 / sampling.adaptive_best_ns,
        sampling.overhead(),
        sampling.leaves,
        sampling.update_median_ns,
    );

    // ---- JSON report ----------------------------------------------------
    let mut gemm_json = String::new();
    for (idx, r) in rows.iter().enumerate() {
        if idx > 0 {
            gemm_json.push_str(",\n");
        }
        gemm_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"threads\": {}, \"median_ns\": {:.0}, \"best_ns\": {:.0}, \"gflops\": {:.2}, \"alloc_bytes_per_call\": {}}}",
            r.name, r.m, r.k, r.n, r.threads, r.median_ns, r.best_ns, r.gflops, r.alloc_bytes_per_call
        ));
    }
    let decode_rows_json = |rows: &[DecodeRow]| {
        let mut s = String::new();
        for (idx, r) in rows.iter().enumerate() {
            if idx > 0 {
                s.push_str(",\n");
            }
            s.push_str(&format!(
                "    {{\"queries\": {}, \"median_ns\": {:.0}, \"best_ns\": {:.0}, \"points_per_s\": {:.0}, \"alloc_bytes_per_call\": {}}}",
                r.queries, r.median_ns, r.best_ns, r.points_per_s, r.alloc_bytes_per_call
            ));
        }
        s
    };
    let decode_json = decode_rows_json(decode_rows);
    let bf16_json = decode_rows_json(&decode.bf16_rows);
    let bf16_compute_json = decode_rows_json(&decode.bf16_compute_rows);
    let conv_row = |median: f64, best: f64, bytes: u64| {
        format!(
            "{{\"median_ns\": {median:.0}, \"best_ns\": {best:.0}, \"gflops\": {gf:.2}, \"alloc_bytes_per_call\": {bytes}}}",
            gf = conv_flops / best
        )
    };
    let json = format!(
        "{{\n\
         \"schema\": \"mfn-bench/kernels/v2\",\n\
         \"mode\": \"{mode}\",\n\
         \"count_alloc\": {count_alloc},\n\
         \"threads\": {threads},\n\
         \"checks\": {{\"gemm_vs_naive\": \"ok\", \"lowerings_vs_direct\": \"ok\"}},\n\
         \"gemm\": [\n{gemm_json}\n  ],\n\
         \"gemm_speedup_vs_naive\": {speedup:.3},\n\
         \"conv3d\": {{\n\
         \"shape\": {{\"n\": {cn}, \"cin\": {cin}, \"cout\": {cout}, \"spatial\": [{s0}, {s1}, {s2}], \"kernel\": [3, 3, 3]}},\n\
         \"direct\": {direct_row},\n\
         \"im2col\": {im2col_row},\n\
         \"implicit_gemm\": {implicit_row},\n\
         \"implicit_grad_input\": {gi_row},\n\
         \"implicit_grad_weight\": {gw_row},\n\
         \"implicit_speedup_vs_im2col\": {conv_speedup:.3}\n\
         }},\n\
         \"decode_values\": {{\n\
         \"encode_median_ns\": {encode_ns:.0},\n\
         \"encode_to_1query_decode_ratio\": {enc_dec_ratio:.1},\n\
         \"rows\": [\n{decode_json}\n  ],\n\
         \"bf16_rows\": [\n{bf16_json}\n  ],\n\
         \"bf16_compute_rows\": [\n{bf16_compute_json}\n  ],\n\
         \"bf16_weight_bytes\": {bf16_bytes},\n\
         \"bf16_speedup_1q\": {bf16_speedup_1q:.3},\n\
         \"bf16_speedup_512q\": {bf16_speedup:.3},\n\
         \"bf16_compute_native\": {bf16_compute_native},\n\
         \"bf16_compute_speedup_64q\": {bf16_compute_speedup_64q:.3},\n\
         \"bf16_compute_speedup_512q\": {bf16_compute_speedup_512q:.3}\n\
         }},\n\
         \"sampling\": {{\n\
         \"queries_per_draw\": {sq},\n\
         \"uniform\": {{\"median_ns\": {su_med:.0}, \"best_ns\": {su_best:.0}, \"points_per_s\": {su_pps:.0}}},\n\
         \"adaptive\": {{\"median_ns\": {sa_med:.0}, \"best_ns\": {sa_best:.0}, \"points_per_s\": {sa_pps:.0}, \"octree_leaves\": {s_leaves}}},\n\
         \"adaptive_overhead\": {s_overhead:.3},\n\
         \"tree_update\": {{\"median_ns\": {st_med:.0}, \"best_ns\": {st_best:.0}}}\n\
         }},\n\
         \"train_step\": {{\n\
         \"pool_on\": {{\"median_ns\": {on_ns:.0}, \"alloc_bytes\": {on_b}, \"alloc_calls\": {on_c}, \"pool_hits\": {on_h}, \"pool_misses\": {on_m}}},\n\
         \"pool_off\": {{\"median_ns\": {off_ns:.0}, \"alloc_bytes\": {off_b}, \"alloc_calls\": {off_c}, \"pool_hits\": {off_h}, \"pool_misses\": {off_m}}},\n\
         \"alloc_drop_ratio\": {alloc_drop:.4}\n\
         }}\n\
         }}\n",
        mode = if quick { "quick" } else { "full" },
        count_alloc = cfg!(feature = "count-alloc"),
        threads = mfn_tensor::effective_threads(),
        speedup = speedup,
        cn = cn,
        cin = cin,
        cout = cout,
        s0 = cs[0],
        s1 = cs[1],
        s2 = cs[2],
        direct_row = conv_row(direct_med, direct_ns, direct_bytes),
        im2col_row = conv_row(lowered_med, lowered_ns, lowered_bytes),
        implicit_row = conv_row(implicit_med, implicit_ns, implicit_bytes),
        gi_row = conv_row(gi_med, gi_ns, gi_bytes),
        gw_row = conv_row(gw_med, gw_ns, gw_bytes),
        encode_ns = encode_ns,
        enc_dec_ratio = encode_ns / decode_rows.first().expect("decode rows").median_ns,
        bf16_bytes = decode.bf16_weight_bytes,
        sq = sampling.queries,
        su_med = sampling.uniform_median_ns,
        su_best = sampling.uniform_best_ns,
        su_pps = sampling.queries as f64 * 1e9 / sampling.uniform_best_ns,
        sa_med = sampling.adaptive_median_ns,
        sa_best = sampling.adaptive_best_ns,
        sa_pps = sampling.queries as f64 * 1e9 / sampling.adaptive_best_ns,
        s_leaves = sampling.leaves,
        s_overhead = sampling.overhead(),
        st_med = sampling.update_median_ns,
        st_best = sampling.update_best_ns,
        on_ns = pool_on.median_ns,
        on_b = pool_on.alloc_bytes_per_step,
        on_c = pool_on.alloc_calls_per_step,
        on_h = pool_on.pool_hits,
        on_m = pool_on.pool_misses,
        off_ns = pool_off.median_ns,
        off_b = pool_off.alloc_bytes_per_step,
        off_c = pool_off.alloc_calls_per_step,
        off_h = pool_off.pool_hits,
        off_m = pool_off.pool_misses,
    );
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("[bench] wrote {out_path}");
    println!("{json}");

    // ---- Regression gate (--gate): speedup ratios vs the committed
    // baseline, after the fresh report is on disk for forensics ----------
    if let Some(path) = gate_path {
        // Re-measure with the same interleaving the report rows use: each
        // ratio's numerator and denominator must share steal phases or the
        // retry windows inherit the very noise they exist to reject.
        let remeasure = || {
            let mut a = vec![0.0f32; size * size];
            let mut b = vec![0.0f32; size * size];
            let mut c_nn = vec![0.0f32; size * size];
            let mut c_naive = vec![0.0f32; size * size];
            lcg_fill(&mut a, 1);
            lcg_fill(&mut b, 2);
            let t = time_interleaved(
                iters,
                &mut [
                    &mut || {
                        gemm(
                            size,
                            size,
                            size,
                            &a,
                            MatLayout::Normal,
                            &b,
                            MatLayout::Normal,
                            &mut c_nn,
                        )
                    },
                    &mut || naive_ikj(size, size, size, &a, &b, &mut c_naive),
                ],
            );
            let tc = time_interleaved(
                iters,
                &mut [
                    &mut || {
                        std::hint::black_box(conv3d(&cinput, &cweight));
                    },
                    &mut || {
                        std::hint::black_box(conv3d_implicit_gemm(&cinput, &cweight));
                    },
                ],
            );
            (t[1].1 / t[0].1, tc[0].1 / tc[1].1)
        };
        let baseline = gate_baseline.as_deref().expect("baseline read at startup");
        if let Err(e) = run_gate(&path, baseline, (speedup, direct_ns / implicit_ns), remeasure) {
            eprintln!("[bench] FAIL: {e}");
            std::process::exit(1);
        }
        // Sampling leg: the adaptive draw's cost relative to uniform must
        // not balloon past the committed baseline. Ratio of two interleaved
        // minima, so machine speed divides out like the kernel legs.
        match serde_json::from_str::<GateSamplingDoc>(baseline) {
            Ok(doc) => {
                let base = doc.sampling.adaptive_overhead;
                let ceiling = base / GATE_FRACTION;
                let mut now = sampling.overhead();
                let mut passed = false;
                for attempt in 0..3 {
                    eprintln!(
                        "[gate] sampling adaptive/uniform draw cost: now {now:.2}x vs \
                         baseline {base:.2}x (ceiling {ceiling:.2}x)"
                    );
                    if now <= ceiling {
                        passed = true;
                        break;
                    }
                    if attempt < 2 {
                        eprintln!("[gate] above ceiling; re-measuring in a fresh window ...");
                        std::thread::sleep(std::time::Duration::from_millis(500));
                        now = now.min(bench_sampling(iters).overhead());
                    }
                }
                if !passed {
                    eprintln!(
                        "[bench] FAIL: adaptive draw overhead {now:.2}x stayed above \
                         {ceiling:.2}x (baseline {base:.2}x / {GATE_FRACTION}) across 3 windows"
                    );
                    std::process::exit(1);
                }
            }
            Err(_) => {
                eprintln!("[gate] baseline has no sampling section; skipping sampling leg");
            }
        }
        // bf16-compute leg: the compute tier's 512-query speedup over f32
        // must hold its fraction of the committed baseline — but only when
        // this run and the baseline took the same route (native vs
        // emulated); mixing the two compares a kernel against a simulator.
        match serde_json::from_str::<GateBf16Doc>(baseline) {
            Ok(doc) if doc.decode_values.bf16_compute_native != bf16_compute_native => {
                eprintln!(
                    "[gate] bf16-compute route differs from baseline (baseline native: {}, \
                     now native: {bf16_compute_native}); skipping bf16-compute leg",
                    doc.decode_values.bf16_compute_native
                );
            }
            Ok(doc) => {
                let base = doc.decode_values.bf16_compute_speedup_512q;
                let floor = GATE_FRACTION * base;
                let mut now = bf16_compute_speedup_512q;
                let mut passed = false;
                for attempt in 0..3 {
                    eprintln!(
                        "[gate] bf16-compute 512q decode speedup: now {now:.2}x vs \
                         baseline {base:.2}x (floor {floor:.2}x)"
                    );
                    if now >= floor {
                        passed = true;
                        break;
                    }
                    if attempt < 2 {
                        eprintln!("[gate] below floor; re-measuring in a fresh window ...");
                        std::thread::sleep(std::time::Duration::from_millis(500));
                        let d = bench_decode(decode_iters);
                        now = now.max(
                            d.rows.last().expect("decode rows").best_ns
                                / d.bf16_compute_rows.last().expect("bf16 compute rows").best_ns,
                        );
                    }
                }
                if !passed {
                    eprintln!(
                        "[bench] FAIL: bf16-compute 512q speedup {now:.2}x stayed below \
                         {GATE_FRACTION}x baseline ({floor:.2}x) across 3 windows"
                    );
                    std::process::exit(1);
                }
            }
            Err(_) => {
                eprintln!("[gate] baseline has no bf16-compute section; skipping bf16 leg");
            }
        }
        eprintln!("[bench] gate vs {path}: ok");
    }
}
