//! # mfn-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section (Sec. 5). Each `table*`/`fig*` function runs
//! the full pipeline — simulate → downsample → train → super-resolve →
//! score — and returns/prints the same rows the paper reports.
//!
//! Scale is controlled by [`ExperimentScale`]: `quick()` (CI-sized, minutes
//! on a laptop CPU), `default_scale()` (the scale used for EXPERIMENTS.md),
//! and `paper()` (the paper's 512×128×400 configuration — hours on CPU). We
//! aim to reproduce the *shape* of each result (ordering, rough factors,
//! crossovers), not the authors' GPU-cluster absolute numbers; see
//! EXPERIMENTS.md.

use mfn_core::{
    baseline_trilinear, evaluate_pair, table_header, BaselineII, BaselineTrainer, Corpus, EvalRow,
    MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer,
};
use mfn_data::{downsample, Dataset, PatchSpec};
use mfn_dist::{train_data_parallel, DistRunResult, ScalingModel};
use mfn_solver::{simulate, RbcConfig};
use std::path::Path;

/// Knobs shared by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// HR grid columns.
    pub nx: usize,
    /// HR grid rows.
    pub nz: usize,
    /// HR output frames.
    pub frames: usize,
    /// Simulated seconds.
    pub duration: f64,
    /// Temporal downsampling factor (paper: 4).
    pub ds_t: usize,
    /// Spatial downsampling factor (paper: 8).
    pub ds_s: usize,
    /// LR patch / latent grid shape.
    pub patch: PatchSpec,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batches per epoch.
    pub batches_per_epoch: usize,
    /// Patches per batch.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Per-epoch lr decay.
    pub lr_decay: f32,
    /// Model width preset.
    pub model: MfnConfig,
    /// Evaluation frames skipped (quiescent spin-up).
    pub eval_skip: usize,
}

impl ExperimentScale {
    /// CI-sized: completes each table in minutes on one CPU core, while
    /// keeping the paper's aggressive 4x/8x downsampling factors (the regime
    /// where trilinear interpolation collapses and the learned models win).
    pub fn quick() -> Self {
        let mut model = MfnConfig::small();
        model.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 128 };
        ExperimentScale {
            nx: 64,
            nz: 33,
            frames: 33,
            duration: 8.0,
            ds_t: 4,
            ds_s: 8,
            patch: model.patch,
            epochs: 30,
            batches_per_epoch: 8,
            batch_size: 4,
            lr: 1e-2,
            lr_decay: 0.96,
            model,
            eval_skip: 8,
        }
    }

    /// The scale used to produce EXPERIMENTS.md (tens of minutes per table
    /// on a multicore CPU). Paper's downsampling factors (4× time, 8×
    /// space) on a quarter-resolution grid.
    pub fn default_scale() -> Self {
        let mut model = MfnConfig::small();
        model.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 256 };
        model.base_channels = 8;
        model.latent_channels = 16;
        model.mlp_hidden = vec![64, 64, 32];
        ExperimentScale {
            nx: 128,
            nz: 33,
            frames: 49,
            duration: 12.0,
            ds_t: 4,
            ds_s: 8,
            patch: model.patch,
            epochs: 120,
            batches_per_epoch: 8,
            batch_size: 4,
            lr: 1e-2,
            lr_decay: 0.98,
            model,
            eval_skip: 8,
        }
    }

    /// The paper's configuration: 512×128 grid, 400 frames, 4×/8×
    /// downsampling, `[4,16,16]` patches, full Fig. 5 widths. CPU-hostile;
    /// provided for completeness (`repro <exp> --paper-scale`).
    pub fn paper() -> Self {
        let model = MfnConfig::paper();
        ExperimentScale {
            nx: 512,
            nz: 128,
            frames: 400,
            duration: 50.0,
            ds_t: 4,
            ds_s: 8,
            patch: model.patch,
            epochs: 100,
            batches_per_epoch: 100,
            batch_size: 8,
            lr: 1e-2,
            lr_decay: 1.0,
            model,
            eval_skip: 20,
        }
    }

    /// Training-loop config implied by this scale.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            lr: self.lr,
            batch_size: self.batch_size,
            batches_per_epoch: self.batches_per_epoch,
            epochs: self.epochs,
            grad_clip: 1.0,
            lr_decay: self.lr_decay,
            ..TrainConfig::default()
        }
    }

    /// Model config with a given equation-loss weight.
    pub fn model_config(&self, gamma: f32) -> MfnConfig {
        let mut m = self.model.clone();
        m.patch = self.patch;
        m.gamma = gamma;
        m
    }

    /// Simulates one HR/LR dataset pair at this scale.
    pub fn build_pair(&self, ra: f64, seed: u64) -> (Dataset, Dataset) {
        let cfg =
            RbcConfig { nx: self.nx, nz: self.nz, ra, dt_max: 2e-3, seed, ..Default::default() };
        let sim = simulate(&cfg, self.duration, self.frames);
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, self.ds_t, self.ds_s);
        (hr, lr)
    }
}

/// Trains a MeshfreeFlowNet on `corpus` and scores it against `test`.
pub fn train_and_score(
    scale: &ExperimentScale,
    corpus: &Corpus,
    test: &(Dataset, Dataset),
    gamma: f32,
    label: &str,
) -> EvalRow {
    let mut trainer =
        Trainer::new(MeshfreeFlowNet::new(scale.model_config(gamma)), scale.train_config());
    trainer.train(corpus);
    let (hr, lr) = test;
    let sr = trainer.model.super_resolve(lr, &hr.meta, corpus.stats);
    let nu = (hr.meta.pr / hr.meta.ra).sqrt();
    evaluate_pair(label, hr, &sr, nu, scale.eval_skip)
}

/// **Table 1**: equation-loss-weight (γ) ablation. Returns one row per γ.
pub fn table1(scale: &ExperimentScale, gammas: &[f32]) -> Vec<EvalRow> {
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair.clone()]);
    let mut rows = Vec::with_capacity(gammas.len());
    for &gamma in gammas {
        eprintln!("[table1] training gamma = {gamma} ...");
        rows.push(train_and_score(scale, &corpus, &pair, gamma, &format!("gamma={gamma}")));
    }
    rows
}

/// The paper's Table 1 γ sweep.
pub const TABLE1_GAMMAS: [f32; 9] = [0.0, 0.0125, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.0];

/// **Table 2**: MeshfreeFlowNet (γ=0 and γ=γ*) vs. Baselines (I) and (II).
pub fn table2(scale: &ExperimentScale) -> Vec<EvalRow> {
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair.clone()]);
    let (hr, lr) = &pair;
    let nu = (hr.meta.pr / hr.meta.ra).sqrt();
    let mut rows = Vec::new();

    eprintln!("[table2] Baseline (I): trilinear interpolation");
    let b1 = baseline_trilinear(lr, hr);
    rows.push(evaluate_pair("Baseline (I)", hr, &b1, nu, scale.eval_skip));

    eprintln!("[table2] Baseline (II): conv-decoder U-Net");
    let b2cfg = scale.model_config(0.0);
    let b2 = BaselineII::new(b2cfg, [scale.ds_t, scale.ds_s, scale.ds_s]);
    // Baseline (II) regresses every HR voxel of the patch per step (~30x the
    // supervision of MFN's sparse queries) at ~30x the per-step cost; give
    // it a proportionally smaller epoch budget so wall-clock budgets match.
    let mut b2_tc = scale.train_config();
    b2_tc.epochs = (scale.epochs / 3).max(5);
    let mut b2t = BaselineTrainer::new(b2, b2_tc);
    b2t.train(&corpus);
    let b2sr = b2t.model.super_resolve(lr, &hr.meta, corpus.stats);
    rows.push(evaluate_pair("Baseline (II)", hr, &b2sr, nu, scale.eval_skip));

    eprintln!("[table2] MeshfreeFlowNet gamma = 0");
    rows.push(train_and_score(scale, &corpus, &pair, 0.0, "MFN, gamma=0"));
    eprintln!("[table2] MeshfreeFlowNet gamma = gamma*");
    rows.push(train_and_score(scale, &corpus, &pair, MfnConfig::GAMMA_STAR, "MFN, gamma=g*"));
    rows
}

/// **Table 3**: generalization to an unseen initial condition after training
/// on 1 vs. `n_many` datasets with different ICs.
pub fn table3(scale: &ExperimentScale, n_many: usize) -> Vec<EvalRow> {
    let test = scale.build_pair(1e6, 999);
    let mut rows = Vec::new();
    eprintln!("[table3] training on 1 dataset ...");
    let one = Corpus::new(vec![scale.build_pair(1e6, 1)]);
    rows.push(train_and_score(scale, &one, &test, MfnConfig::GAMMA_STAR, "1 dataset"));
    eprintln!("[table3] training on {n_many} datasets ...");
    let many = Corpus::new((1..=n_many as u64).map(|s| scale.build_pair(1e6, s)).collect());
    rows.push(train_and_score(
        scale,
        &many,
        &test,
        MfnConfig::GAMMA_STAR,
        &format!("{n_many} datasets"),
    ));
    rows
}

/// **Table 4**: generalization across Rayleigh numbers. Trains once on
/// `train_ras`, evaluates on each `test_ras` (unseen seed).
pub fn table4(scale: &ExperimentScale, train_ras: &[f64], test_ras: &[f64]) -> Vec<EvalRow> {
    eprintln!("[table4] training on Ra = {train_ras:?} ...");
    let corpus = Corpus::new(
        train_ras.iter().enumerate().map(|(i, &ra)| scale.build_pair(ra, 10 + i as u64)).collect(),
    );
    let mut trainer = Trainer::new(
        MeshfreeFlowNet::new(scale.model_config(MfnConfig::GAMMA_STAR)),
        scale.train_config(),
    );
    trainer.train(&corpus);
    let mut rows = Vec::new();
    for &ra in test_ras {
        eprintln!("[table4] evaluating Ra = {ra:.1e} ...");
        let (hr, lr) = scale.build_pair(ra, 777);
        let sr = trainer.model.super_resolve(&lr, &hr.meta, corpus.stats);
        let nu = (hr.meta.pr / hr.meta.ra).sqrt();
        rows.push(evaluate_pair(&format!("Ra={ra:.1e}"), &hr, &sr, nu, scale.eval_skip));
    }
    rows
}

/// **Fig. 6**: dumps LR-input / MFN-prediction / HR-ground-truth contour
/// panels (PGM + CSV) for all four channels into `outdir`.
pub fn fig6(scale: &ExperimentScale, outdir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(outdir)?;
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair.clone()]);
    let (hr, lr) = &pair;
    eprintln!("[fig6] training MFN gamma = gamma* ...");
    let mut trainer = Trainer::new(
        MeshfreeFlowNet::new(scale.model_config(MfnConfig::GAMMA_STAR)),
        scale.train_config(),
    );
    trainer.train(&corpus);
    let sr = trainer.model.super_resolve(lr, &hr.meta, corpus.stats);
    let frame_hr = hr.meta.nt * 3 / 4;
    let frame_lr = (frame_hr / scale.ds_t).min(lr.meta.nt - 1);
    let names = ["T", "p", "u", "w"];
    for (c, name) in names.iter().enumerate() {
        mfn_data::image::write_pgm(lr, frame_lr, c, &outdir.join(format!("lr_{name}.pgm")))?;
        mfn_data::image::write_pgm(&sr, frame_hr, c, &outdir.join(format!("pred_{name}.pgm")))?;
        mfn_data::image::write_pgm(hr, frame_hr, c, &outdir.join(format!("gt_{name}.pgm")))?;
        mfn_data::image::write_csv(&sr, frame_hr, c, &outdir.join(format!("pred_{name}.csv")))?;
        mfn_data::image::write_csv(hr, frame_hr, c, &outdir.join(format!("gt_{name}.csv")))?;
    }
    eprintln!("[fig6] wrote panels to {}", outdir.display());
    Ok(())
}

/// One measured point of the Fig. 7 scaling study.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker count.
    pub workers: usize,
    /// Measured samples/second.
    pub throughput: f64,
    /// Loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock at each epoch end.
    pub epoch_wall: Vec<f64>,
}

/// **Fig. 7**: measured data-parallel scaling up to `max_workers` plus the
/// calibrated analytic extension to 128 workers. Returns the measured points
/// and the fitted model.
pub fn fig7(scale: &ExperimentScale, max_workers: usize) -> (Vec<ScalingPoint>, ScalingModel) {
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair]);
    let tc = scale.train_config();
    let mcfg = scale.model_config(MfnConfig::GAMMA_STAR);
    let mut counts = vec![1usize];
    let mut w = 2;
    while w <= max_workers {
        counts.push(w);
        w *= 2;
    }
    let mut points = Vec::new();
    let mut grad_elems = 1usize;
    for &n in &counts {
        eprintln!("[fig7] measuring {n} worker(s) ...");
        let r: DistRunResult = train_data_parallel(&corpus, &mcfg, &tc, n);
        grad_elems = r.grad_elems;
        points.push(ScalingPoint {
            workers: n,
            throughput: r.throughput,
            epoch_losses: r.epoch_losses,
            epoch_wall: r.epoch_wall,
        });
    }
    let measured: Vec<(usize, f64)> = points.iter().map(|p| (p.workers, p.throughput)).collect();
    let model =
        ScalingModel::calibrate(&measured, (grad_elems * 4) as f64, tc.batch_size as f64, 0.8);
    (points, model)
}

/// **Ablation A**: sensitivity of the equation-loss training to the
/// finite-difference stencil step `h` (the key knob of DESIGN.md's
/// derivative substitution). Returns `(h, final prediction loss, final
/// equation loss)` per setting.
pub fn ablation_fd_step(scale: &ExperimentScale, steps: &[f32]) -> Vec<(f32, f32, f32)> {
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair]);
    steps
        .iter()
        .map(|&h| {
            eprintln!("[ablation] fd_step = {h} ...");
            let mut cfg = scale.model_config(MfnConfig::GAMMA_STAR);
            cfg.fd_step = h;
            let mut trainer = Trainer::new(MeshfreeFlowNet::new(cfg), scale.train_config());
            let recs = trainer.train(&corpus);
            let last = recs.last().expect("non-empty training");
            (h, last.prediction, last.equation)
        })
        .collect()
}

/// **Ablation B**: decoder activation. The paper's Fig. 5 shows ReLU; we
/// default to softplus so exact second derivatives exist (ReLU's vanish
/// almost everywhere, silently disabling the Laplacian terms of the
/// equation loss). Returns `(name, final prediction loss, final equation
/// loss)` per activation.
pub fn ablation_activation(scale: &ExperimentScale) -> Vec<(&'static str, f32, f32)> {
    use mfn_autodiff::Activation;
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair]);
    [("softplus", Activation::Softplus), ("relu", Activation::Relu), ("tanh", Activation::Tanh)]
        .into_iter()
        .map(|(name, act)| {
            eprintln!("[ablation] activation = {name} ...");
            let mut cfg = scale.model_config(MfnConfig::GAMMA_STAR);
            cfg.activation = act;
            let mut trainer = Trainer::new(MeshfreeFlowNet::new(cfg), scale.train_config());
            let recs = trainer.train(&corpus);
            let last = recs.last().expect("non-empty training");
            (name, last.prediction, last.equation)
        })
        .collect()
}

/// **Ablation C**: PDE-constraint combinations (the paper's "arbitrary
/// combinations of PDE constraints" feature). Returns
/// `(label, final prediction loss, final equation loss)` per combination.
pub fn ablation_constraints(scale: &ExperimentScale) -> Vec<(&'static str, f32, f32)> {
    use mfn_core::ConstraintSet;
    let pair = scale.build_pair(1e6, 7);
    let corpus = Corpus::new(vec![pair]);
    let combos: [(&'static str, ConstraintSet); 3] = [
        ("all four", ConstraintSet::ALL),
        ("continuity only", ConstraintSet::CONTINUITY_ONLY),
        (
            "transport only",
            ConstraintSet {
                continuity: false,
                temperature: true,
                momentum_x: false,
                momentum_z: false,
            },
        ),
    ];
    combos
        .into_iter()
        .map(|(name, set)| {
            eprintln!("[ablation] constraints = {name} ...");
            let mut cfg = scale.model_config(MfnConfig::GAMMA_STAR);
            cfg.constraints = set;
            let mut trainer = Trainer::new(MeshfreeFlowNet::new(cfg), scale.train_config());
            let recs = trainer.train(&corpus);
            let last = recs.last().expect("non-empty training");
            (name, last.prediction, last.equation)
        })
        .collect()
}

/// Prints a table of [`EvalRow`]s in the paper's layout.
pub fn print_rows(title: &str, rows: &[EvalRow]) {
    println!("\n=== {title} ===");
    println!("{}", table_header());
    for r in rows {
        println!("{}", r.format());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A micro scale so harness smoke tests stay fast.
    fn micro() -> ExperimentScale {
        let mut s = ExperimentScale::quick();
        s.nx = 32;
        s.nz = 9;
        s.frames = 9;
        s.duration = 0.5;
        s.ds_t = 2;
        s.ds_s = 2;
        s.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
        s.model.patch = s.patch;
        s.model.base_channels = 4;
        s.model.latent_channels = 8;
        s.model.mlp_hidden = vec![16, 16];
        s.epochs = 2;
        s.batches_per_epoch = 2;
        s.batch_size = 2;
        s.eval_skip = 2;
        s
    }

    #[test]
    fn table2_smoke() {
        let rows = table2(&micro());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.scores.len() == 9));
        assert!(rows[0].label.contains("Baseline (I)"));
    }

    #[test]
    fn table1_smoke() {
        let rows = table1(&micro(), &[0.0, 0.1]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].label.contains("0.1"));
    }

    #[test]
    fn table3_smoke() {
        let rows = table3(&micro(), 2);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn table4_smoke() {
        let rows = table4(&micro(), &[1e5], &[1e5, 1e6]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn fig7_smoke() {
        let (points, model) = fig7(&micro(), 2);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.throughput > 0.0));
        assert!(model.throughput(128) > 0.0);
        assert!(model.efficiency(128) <= 1.0 + 1e-9);
    }

    #[test]
    fn ablations_smoke() {
        let s = micro();
        let fd = ablation_fd_step(&s, &[0.02, 0.05]);
        assert_eq!(fd.len(), 2);
        assert!(fd.iter().all(|(_, p, e)| p.is_finite() && e.is_finite() && *e > 0.0));
        let act = ablation_activation(&s);
        assert_eq!(act.len(), 3);
        let cons = ablation_constraints(&s);
        assert_eq!(cons.len(), 3);
        // Different constraint sets must produce different equation-loss
        // magnitudes (they average different residuals).
        assert_ne!(cons[0].2, cons[1].2);
    }

    #[test]
    fn fig6_smoke() {
        let dir = std::env::temp_dir().join("mfn_fig6_smoke");
        fig6(&micro(), &dir).expect("fig6");
        for name in ["lr_T.pgm", "pred_w.pgm", "gt_u.csv"] {
            assert!(dir.join(name).exists(), "{name} missing");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
