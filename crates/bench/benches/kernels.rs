//! Criterion micro-benchmarks of the compute kernels underlying every
//! experiment: GEMM and conv3d (the NN hot loops), FFT (solver + spectra),
//! one Rayleigh–Bénard solver step, decoder query throughput, and the ring
//! all-reduce bandwidth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mfn_autodiff::{Activation, Graph, Mlp, ParamStore};
use mfn_core::{plan_queries, ContinuousDecoder};
use mfn_dist::ring;
use mfn_fft::FftPlan;
use mfn_solver::{RbcConfig, RbcSolver};
use mfn_tensor::{conv3d, conv3d_im2col, matmul, Tensor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_conv3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv3d");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    // The U-Net's characteristic shapes: [N, C, 4, 16, 16] with 3x3x3 kernels.
    for &ch in &[8usize, 16, 32] {
        let x = Tensor::randn(&[4, ch, 4, 16, 16], 1.0, &mut rng);
        let w = Tensor::randn(&[ch, ch, 3, 3, 3], 0.1, &mut rng);
        let flops = 4 * ch * ch * 4 * 16 * 16 * 27;
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ch), &ch, |bench, _| {
            bench.iter(|| conv3d(black_box(&x), black_box(&w)))
        });
    }
    group.finish();
}

/// Ablation: direct conv3d vs im2col+GEMM lowering at U-Net shapes.
fn bench_conv3d_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv3d_im2col_vs_direct");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for &ch in &[8usize, 32] {
        let x = Tensor::randn(&[4, ch, 4, 16, 16], 1.0, &mut rng);
        let w = Tensor::randn(&[ch, ch, 3, 3, 3], 0.1, &mut rng);
        group.bench_with_input(BenchmarkId::new("direct", ch), &ch, |bench, _| {
            bench.iter(|| conv3d(black_box(&x), black_box(&w)))
        });
        group.bench_with_input(BenchmarkId::new("im2col", ch), &ch, |bench, _| {
            bench.iter(|| conv3d_im2col(black_box(&x), black_box(&w)))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[128usize, 512, 4096] {
        let plan = FftPlan::new(n);
        let sig: Vec<mfn_fft::Complex> =
            (0..n).map(|i| mfn_fft::Complex::new((i as f64 * 0.1).sin(), 0.0)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut buf = sig.clone();
                plan.forward(black_box(&mut buf));
                buf
            })
        });
    }
    group.finish();
}

fn bench_solver_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbc_solver_step");
    for &(nx, nz) in &[(64usize, 17usize), (128, 33), (256, 65)] {
        let cfg = RbcConfig { nx, nz, ra: 1e6, dt_max: 1e-3, ..Default::default() };
        group.throughput(Throughput::Elements((nx * nz) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nx}x{nz}")),
            &(nx, nz),
            |bench, _| {
                let mut solver = RbcSolver::new(cfg);
                // Warm up past the first (non-AB2) step.
                solver.step(1e-3);
                bench.iter(|| solver.step(black_box(1e-3)))
            },
        );
    }
    group.finish();
}

fn bench_decoder_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoder_queries");
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mlp = Mlp::new(&mut store, "d", &[3 + 16, 64, 64, 32, 4], Activation::Softplus, &mut rng);
    let dec = ContinuousDecoder::new(mlp, 16);
    let latent = Tensor::randn(&[1, 16, 4, 8, 8], 0.5, &mut rng);
    for &q in &[64usize, 512, 2048] {
        let queries: Vec<(usize, [f32; 3])> = (0..q)
            .map(|i| {
                let f = i as f32 / q as f32;
                (0usize, [f, (f * 1.7).fract(), (f * 2.3).fract()])
            })
            .collect();
        let plan = plan_queries([4, 8, 8], queries);
        group.throughput(Throughput::Elements(q as u64));
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |bench, _| {
            bench.iter(|| {
                let mut g = Graph::new();
                let l = g.constant(latent.clone());
                let y = dec.decode(&mut g, &store, l, black_box(&plan));
                g.value(y).sum()
            })
        });
    }
    group.finish();
}

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce");
    group.sample_size(20);
    for &workers in &[2usize, 4] {
        for &len in &[65_536usize, 1_048_576] {
            group.throughput(Throughput::Bytes((len * 4) as u64));
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{workers}w_{len}")),
                &(workers, len),
                |bench, &(workers, len)| {
                    bench.iter(|| {
                        let handles = ring(workers);
                        std::thread::scope(|scope| {
                            let joins: Vec<_> = handles
                                .into_iter()
                                .map(|h| {
                                    scope.spawn(move || {
                                        let mut buf = vec![1.0f32; len];
                                        h.all_reduce_mean(&mut buf);
                                        buf[0]
                                    })
                                })
                                .collect();
                            joins.into_iter().map(|j| j.join().expect("worker")).sum::<f32>()
                        })
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_matmul, bench_conv3d, bench_conv3d_im2col, bench_fft,
        bench_solver_step, bench_decoder_queries, bench_ring_allreduce
}
criterion_main!(kernels);
