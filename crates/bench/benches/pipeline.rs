//! Criterion benchmarks of the end-to-end pipeline stages: one full training
//! step (forward + both losses + backward + Adam), the equation-loss stencil
//! overhead (the ablation of DESIGN.md's FD-substitution cost), and
//! full-domain super-resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfn_core::{ChannelStats, Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer};
use mfn_data::{downsample, make_batch, Dataset, PatchSampler, PatchSpec};
use mfn_solver::{simulate, RbcConfig};
use mfn_telemetry::Recorder;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn data() -> (Dataset, Dataset) {
    let sim = simulate(
        &RbcConfig { nx: 64, nz: 17, ra: 1e6, dt_max: 2e-3, ..Default::default() },
        1.0,
        17,
    );
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    (hr, lr)
}

fn model_cfg(gamma: f32) -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 8, nx: 8, queries: 128 };
    cfg.gamma = gamma;
    cfg
}

/// One optimizer step, with and without the equation loss: measures the cost
/// of the PDE constraint (7 extra decoder passes through the FD stencil).
fn bench_train_step(c: &mut Criterion) {
    let (hr, lr) = data();
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for (name, gamma) in [("gamma0", 0.0f32), ("gamma_star", 0.0125)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &gamma, |bench, &gamma| {
            let mut trainer = Trainer::new(
                MeshfreeFlowNet::new(model_cfg(gamma)),
                TrainConfig { lr: 1e-3, ..Default::default() },
            );
            let sampler = PatchSampler::new(&hr, &lr, trainer.model.cfg.patch);
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            bench.iter(|| {
                let batch = make_batch(&sampler, 4, &mut rng);
                black_box(trainer.step(&batch, corpus.params(0), corpus.stats))
            })
        });
    }
    group.finish();
}

/// The same gradient step with telemetry variants: `null` (the default
/// disabled recorder — the acceptance bar is within a few percent of the
/// uninstrumented step, since recording is a single branch) and `memory`
/// (the bounded ring buffer tests use).
fn bench_train_step_telemetry(c: &mut Criterion) {
    let (hr, lr) = data();
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);
    let mut group = c.benchmark_group("train_step_telemetry");
    group.sample_size(10);
    for name in ["null", "memory"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, &name| {
            let recorder = match name {
                "null" => Recorder::null(),
                _ => Recorder::memory(1024).0,
            };
            let mut trainer = Trainer::new(
                MeshfreeFlowNet::new(model_cfg(0.0)),
                TrainConfig { lr: 1e-3, ..Default::default() },
            )
            .with_recorder(recorder);
            let sampler = PatchSampler::new(&hr, &lr, trainer.model.cfg.patch);
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            bench.iter(|| {
                let batch = make_batch(&sampler, 4, &mut rng);
                black_box(trainer.step(&batch, corpus.params(0), corpus.stats))
            })
        });
    }
    group.finish();
}

/// Full-domain super-resolution of the LR dataset onto the HR grid.
fn bench_super_resolve(c: &mut Criterion) {
    let (hr, lr) = data();
    let stats = ChannelStats::from_meta(&hr.meta);
    let mut group = c.benchmark_group("super_resolve");
    group.sample_size(10);
    group.bench_function("full_domain", |bench| {
        let mut model = MeshfreeFlowNet::new(model_cfg(0.0));
        bench.iter(|| black_box(model.super_resolve(&lr, &hr.meta, stats)))
    });
    group.finish();
}

/// One simulated second of the Rayleigh–Bénard substrate (data generation).
fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("rbc_64x17_1s", |bench| {
        bench.iter(|| {
            let cfg = RbcConfig { nx: 64, nz: 17, ra: 1e6, dt_max: 2e-3, ..Default::default() };
            black_box(simulate(&cfg, 1.0, 5))
        })
    });
    group.finish();
}

criterion_group! {
    name = pipeline;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_train_step, bench_train_step_telemetry, bench_super_resolve, bench_simulation
}
criterion_main!(pipeline);
