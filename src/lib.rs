//! Umbrella crate re-exporting the MeshfreeFlowNet reproduction's public API.
pub use mfn_autodiff as autodiff;
pub use mfn_core as core;
pub use mfn_data as data;
pub use mfn_dist as dist;
pub use mfn_fft as fft;
pub use mfn_physics as physics;
pub use mfn_serve as serve;
pub use mfn_solver as solver;
pub use mfn_telemetry as telemetry;
pub use mfn_tensor as tensor;
