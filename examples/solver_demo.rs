//! The CFD substrate on its own: simulate Rayleigh–Bénard convection
//! (paper Figs. 1–2), report the turbulence statistics of Sec. 3.3 as the
//! flow develops, verify the PDE residuals of the produced data, and write
//! temperature contour images.
//!
//! Run with: `cargo run --release --example solver_demo`

use meshfreeflownet::data::Dataset;
use meshfreeflownet::physics::{flow_stats, grid_residuals, METRIC_NAMES};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn main() {
    let cfg = RbcConfig {
        nx: 128,
        nz: 33,
        ra: 1e6,
        pr: 1.0,
        dt_max: 2e-3,
        seed: 42,
        ..Default::default()
    };
    println!(
        "Rayleigh-Benard: {}x{} grid, Ra = {:.0e}, Pr = {}, P* = {:.2e}, R* = {:.2e}",
        cfg.nx,
        cfg.nz,
        cfg.ra,
        cfg.pr,
        cfg.p_star(),
        cfg.r_star()
    );
    let t0 = std::time::Instant::now();
    let sim = simulate(&cfg, 10.0, 41);
    println!(
        "simulated 10 s in {:.1} s wall clock, {} frames",
        t0.elapsed().as_secs_f64(),
        sim.frames.len()
    );

    // Turbulence statistics as the instability develops.
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "t", "E_tot", "u_rms", "epsilon", "Re_lambda", "L"
    );
    let nu = cfg.r_star();
    for frame in sim.frames.iter().step_by(8) {
        let s = flow_stats(&sim.domain, &frame.u, &frame.w, nu);
        println!(
            "{:>6.2} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e} {:>12.4e}",
            frame.time, s.etot, s.urms, s.dissipation, s.re_lambda, s.integral_scale
        );
    }

    // PDE-residual self-check of the generated data.
    let mid = sim.frames.len() / 2;
    let r = grid_residuals(&sim, mid);
    println!("\nmean |PDE residual| at t = {:.2}:", sim.frames[mid].time);
    for (name, v) in ["continuity", "temperature", "momentum-x", "momentum-z"].iter().zip(r) {
        println!("  {name:<12} {v:.3e}");
    }

    // Contour dumps (temperature at three times).
    let ds = Dataset::from_simulation(&sim);
    let dir = std::path::Path::new("results").join("solver_demo");
    std::fs::create_dir_all(&dir).expect("mkdir results/solver_demo");
    for (tag, f) in [("early", 10usize), ("mid", 24), ("late", 40)] {
        let path = dir.join(format!("temperature_{tag}.pgm"));
        meshfreeflownet::data::image::write_pgm(&ds, f, 0, &path).expect("write pgm");
        println!("wrote {}", path.display());
    }
    println!("\nall nine metrics available: {METRIC_NAMES:?}");
}
