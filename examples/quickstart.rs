//! Quickstart: the whole MeshfreeFlowNet pipeline in one minute on a CPU.
//!
//! 1. Simulate a small Rayleigh–Bénard dataset (the Dedalus substitute).
//! 2. Downsample it to build the low-resolution input.
//! 3. Train a compact MeshfreeFlowNet with the combined loss (Eqn. 10).
//! 4. Super-resolve the LR data back to the HR grid.
//! 5. Score the result against the ground truth with the paper's physics
//!    metrics, alongside the trilinear Baseline (I).
//!
//! Run with: `cargo run --release --example quickstart`

use meshfreeflownet::core::{
    baseline_trilinear, evaluate_pair, table_header, Corpus, MeshfreeFlowNet, MfnConfig,
    TrainConfig, Trainer,
};
use meshfreeflownet::data::{downsample, Dataset};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn main() {
    println!("== MeshfreeFlowNet quickstart ==");

    // 1. Generate data: Ra = 1e6, Pr = 1 Rayleigh–Bénard convection.
    let cfg = RbcConfig { nx: 64, nz: 17, ra: 1e6, dt_max: 2e-3, seed: 7, ..Default::default() };
    println!("simulating {}x{} grid, Ra = {:.0e} ...", cfg.nx, cfg.nz, cfg.ra);
    let sim = simulate(&cfg, 8.0, 33);
    let hr = Dataset::from_simulation(&sim);

    // 2. LR input: downsample 2x in time, 2x in space (keep the example
    //    small; the paper uses 4x / 8x at its full scale).
    let lr = downsample(&hr, 2, 2);
    println!(
        "HR [{} frames, {}x{}] -> LR [{} frames, {}x{}]",
        hr.meta.nt, hr.meta.nz, hr.meta.nx, lr.meta.nt, lr.meta.nz, lr.meta.nx
    );

    // 3. Train.
    let mut mcfg = MfnConfig::small();
    mcfg.gamma = MfnConfig::GAMMA_STAR;
    let model = MeshfreeFlowNet::new(mcfg);
    println!("model parameters: {}", model.param_count());
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);
    let mut trainer = Trainer::new(
        model,
        TrainConfig {
            epochs: 20,
            batches_per_epoch: 8,
            batch_size: 4,
            lr: 1e-2,
            ..Default::default()
        },
    );
    let records = trainer.train(&corpus);
    for r in records.iter().step_by(5) {
        println!(
            "epoch {:>3}  loss {:.4}  (pred {:.4}, eq {:.4})  [{:.2}s]",
            r.epoch, r.loss, r.prediction, r.equation, r.seconds
        );
    }

    // 4. Super-resolve the full LR dataset.
    let sr = trainer.model.super_resolve(&lr, &hr.meta, corpus.stats);
    let b1 = baseline_trilinear(&lr, &hr);

    // 5. Physics-metric scoreboard (skip the quiescent start-up frames).
    let nu = (cfg.pr / cfg.ra).sqrt();
    println!("\n{}", table_header());
    println!("{}", evaluate_pair("trilinear (Baseline I)", &hr, &b1, nu, 8).format());
    println!("{}", evaluate_pair("MeshfreeFlowNet", &hr, &sr, nu, 8).format());
    println!(
        "\nNOTE: this quickstart uses mild 2x/2x downsampling and a ~1-minute training \
         budget; trilinear interpolation is strong in this easy regime. See \
         `repro table2` / EXPERIMENTS.md for the paper's 4x/8x regime where \
         MeshfreeFlowNet wins on every metric.\ndone."
    );
}
