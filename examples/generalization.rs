//! Generalization to unseen initial and boundary conditions — a compact
//! version of the paper's Sec. 5.3 (Tables 3 and 4).
//!
//! Part 1 (unseen ICs): train on 1 vs. 3 datasets with different random
//! initial perturbations and evaluate on a held-out initial condition.
//!
//! Part 2 (unseen BCs): train on several Rayleigh numbers and test on
//! Rayleigh numbers inside and outside the training range.
//!
//! Run with: `cargo run --release --example generalization`

use meshfreeflownet::core::{
    evaluate_pair, table_header, Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer,
};
use meshfreeflownet::data::{downsample, Dataset};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn make_pair(ra: f64, seed: u64) -> (Dataset, Dataset) {
    let cfg = RbcConfig { nx: 64, nz: 17, ra, dt_max: 2e-3, seed, ..Default::default() };
    let sim = simulate(&cfg, 6.0, 25);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    (hr, lr)
}

fn train_and_eval(corpus: &Corpus, test: &(Dataset, Dataset), label: &str) {
    let tc = TrainConfig {
        epochs: 15,
        batches_per_epoch: 8,
        batch_size: 4,
        lr: 1e-2,
        ..Default::default()
    };
    let mut mcfg = MfnConfig::small();
    mcfg.gamma = MfnConfig::GAMMA_STAR;
    let mut trainer = Trainer::new(MeshfreeFlowNet::new(mcfg), tc);
    trainer.train(corpus);
    let (hr, lr) = test;
    let sr = trainer.model.super_resolve(lr, &hr.meta, corpus.stats);
    let nu = (hr.meta.pr / hr.meta.ra).sqrt();
    println!("{}", evaluate_pair(label, hr, &sr, nu, 6).format());
}

fn main() {
    println!("== Part 1: unseen initial conditions (paper Table 3) ==");
    let test_ic = make_pair(1e6, 999); // held-out IC
    println!("{}", table_header());
    let one = Corpus::new(vec![make_pair(1e6, 1)]);
    train_and_eval(&one, &test_ic, "trained on 1 dataset");
    let many = Corpus::new((1..=3).map(|s| make_pair(1e6, s)).collect());
    train_and_eval(&many, &test_ic, "trained on 3 datasets");

    println!("\n== Part 2: unseen boundary conditions / Rayleigh sweep (paper Table 4) ==");
    // Train on Ra in {2e5, 8e5, 3e6}, test inside and outside the range.
    let train_ras = [2e5, 8e5, 3e6];
    let corpus = Corpus::new(train_ras.iter().map(|&ra| make_pair(ra, 5)).collect());
    println!("training on Ra = {train_ras:?}");
    let tc = TrainConfig {
        epochs: 15,
        batches_per_epoch: 9,
        batch_size: 4,
        lr: 1e-2,
        ..Default::default()
    };
    let mut mcfg = MfnConfig::small();
    mcfg.gamma = MfnConfig::GAMMA_STAR;
    let mut trainer = Trainer::new(MeshfreeFlowNet::new(mcfg), tc);
    trainer.train(&corpus);
    println!("{}", table_header());
    for (label, ra) in
        [("Ra=1e5 (below range)", 1e5), ("Ra=1e6 (in range)", 1e6), ("Ra=1e7 (above range)", 1e7)]
    {
        let (hr, lr) = make_pair(ra, 777);
        let sr = trainer.model.super_resolve(&lr, &hr.meta, corpus.stats);
        let nu = (hr.meta.pr / hr.meta.ra).sqrt();
        println!("{}", evaluate_pair(label, &hr, &sr, nu, 6).format());
    }
}
