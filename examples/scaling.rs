//! Data-parallel scaling — a compact version of the paper's Sec. 5.4
//! (Fig. 7): measured throughput across worker counts on this host, ring
//! all-reduce and all, then the calibrated analytic extension to 128 workers
//! with the scaling-efficiency figure the paper reports (96.8%).
//!
//! Run with: `cargo run --release --example scaling`

use meshfreeflownet::core::{Corpus, MfnConfig, TrainConfig};
use meshfreeflownet::data::{downsample, Dataset, PatchSpec};
use meshfreeflownet::dist::{train_data_parallel, ScalingModel};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn main() {
    let cfg = RbcConfig { nx: 32, nz: 17, ra: 1e6, dt_max: 2e-3, ..Default::default() };
    println!("simulating training data ...");
    let sim = simulate(&cfg, 2.0, 17);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr, lr)]);

    let mut mcfg = MfnConfig::small();
    mcfg.patch = PatchSpec { nt: 4, nz: 8, nx: 8, queries: 64 };
    let tc = TrainConfig {
        epochs: 2,
        batches_per_epoch: 6,
        batch_size: 2,
        lr: 5e-3,
        ..Default::default()
    };

    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(4);
    let mut counts = vec![1usize, 2];
    let mut w = 4;
    while w <= cores {
        counts.push(w);
        w *= 2;
    }
    println!("measuring throughput on {counts:?} workers ({cores} cores available)\n");
    println!("{:>8} {:>16} {:>12} {:>12}", "workers", "samples/s", "speedup", "efficiency");
    let mut measured = Vec::new();
    let mut grad_elems = 0usize;
    for &n in &counts {
        let r = train_data_parallel(&corpus, &mcfg, &tc, n);
        grad_elems = r.grad_elems;
        measured.push((n, r.throughput));
        let base = measured[0].1;
        println!(
            "{:>8} {:>16.1} {:>12.2} {:>11.1}%",
            n,
            r.throughput,
            r.throughput / base,
            100.0 * r.throughput / (n as f64 * base)
        );
    }

    // Calibrated analytic extension (Fig. 7a beyond the host's cores).
    let model =
        ScalingModel::calibrate(&measured, (grad_elems * 4) as f64, (tc.batch_size) as f64, 0.8);
    println!(
        "\ncalibrated model: t_compute = {:.4}s, bandwidth = {:.2e} B/s",
        model.t_compute, model.bandwidth
    );
    println!("{:>8} {:>16} {:>12}", "workers", "model samples/s", "efficiency");
    for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        println!("{:>8} {:>16.1} {:>11.1}%", n, model.throughput(n), 100.0 * model.efficiency(n));
    }
    println!("\npaper reference: 96.80% efficiency at 128 GPUs (Fig. 7a)");
}
