//! Turbulent-flow super-resolution with PDE constraints: a compact version
//! of the paper's core experiment (Tables 1–2) comparing
//!
//! - Baseline (I): trilinear interpolation,
//! - Baseline (II): U-Net with a convolutional decoder,
//! - MeshfreeFlowNet with γ = 0 (no physics), and
//! - MeshfreeFlowNet with γ = γ* = 0.0125 (the paper's optimum),
//!
//! and additionally demonstrates the *mesh-free* property: sampling the
//! trained model at an arbitrary resolution the training grid never had.
//!
//! Run with: `cargo run --release --example turbulence_superresolution`

use meshfreeflownet::core::{
    baseline_trilinear, evaluate_pair, table_header, BaselineII, BaselineTrainer, Corpus,
    MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer,
};
use meshfreeflownet::data::{downsample, Dataset};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn main() {
    let cfg = RbcConfig { nx: 64, nz: 17, ra: 1e6, dt_max: 2e-3, seed: 11, ..Default::default() };
    println!("simulating Rayleigh-Benard (Ra = {:.0e}) ...", cfg.ra);
    let sim = simulate(&cfg, 8.0, 33);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);
    let nu = (cfg.pr / cfg.ra).sqrt();
    let tc = TrainConfig {
        epochs: 18,
        batches_per_epoch: 8,
        batch_size: 4,
        lr: 1e-2,
        ..Default::default()
    };

    // MeshfreeFlowNet, γ = 0 and γ = γ*.
    let mut rows = Vec::new();
    for (label, gamma) in [("MFN γ=0", 0.0f32), ("MFN γ=γ*", MfnConfig::GAMMA_STAR)] {
        let mut mcfg = MfnConfig::small();
        mcfg.gamma = gamma;
        println!("training {label} ...");
        let mut trainer = Trainer::new(MeshfreeFlowNet::new(mcfg), tc);
        trainer.train(&corpus);
        let sr = trainer.model.super_resolve(&lr, &hr.meta, corpus.stats);
        rows.push(evaluate_pair(label, &hr, &sr, nu, 8));
        if gamma > 0.0 {
            // Mesh-free demonstration: decode on a grid 3x finer than HR.
            let mut fine_meta = hr.meta.clone();
            fine_meta.nz = (hr.meta.nz - 1) * 3 + 1;
            fine_meta.nx = hr.meta.nx * 3;
            let fine = trainer.model.super_resolve(&lr, &fine_meta, corpus.stats);
            println!(
                "  mesh-free decode at {}x{} (HR was {}x{}): finite = {}",
                fine.meta.nz,
                fine.meta.nx,
                hr.meta.nz,
                hr.meta.nx,
                fine.data.iter().all(|v| v.is_finite())
            );
        }
    }

    // Baseline (II): conv-decoder U-Net with the same backbone.
    println!("training Baseline (II) ...");
    let mut b2cfg = MfnConfig::small();
    b2cfg.gamma = 0.0;
    let b2 = BaselineII::new(b2cfg, [2, 2, 2]);
    let mut b2t = BaselineTrainer::new(b2, tc);
    b2t.train(&corpus);
    let b2sr = b2t.model.super_resolve(&lr, &hr.meta, corpus.stats);
    rows.push(evaluate_pair("Baseline (II) U-Net", &hr, &b2sr, nu, 8));

    // Baseline (I): trilinear.
    let b1 = baseline_trilinear(&lr, &hr);
    rows.push(evaluate_pair("Baseline (I) trilinear", &hr, &b1, nu, 8));

    println!("\n{}", table_header());
    for row in &rows {
        println!("{}", row.format());
    }
    println!(
        "\n(cells are 100xNMAE with R² in parentheses. NOTE: this demo uses mild 2x/2x \
         downsampling so it finishes in minutes — a regime where trilinear interpolation \
         is genuinely strong. The paper's 4x/8x regime, where trilinear collapses and \
         MeshfreeFlowNet wins on all metrics, is reproduced by `repro table2`; see \
         EXPERIMENTS.md.)"
    );
}
