//! Uniform vs residual-guided adaptive query sampling: equation-loss
//! convergence per decoder/stencil evaluation (EXPERIMENTS.md "Adaptive
//! query sampling" entry).
//!
//! Both arms train the same small MeshfreeFlowNet on the same
//! Rayleigh–Bénard pair with pinned seeds; the only difference is where
//! the *training* query points come from. Two convergence metrics are
//! reported per seed:
//!
//! - **step metric** — the per-step `loss_equation` telemetry both arms
//!   emit (the adaptive arm's is the self-normalized importance-weighted
//!   estimate of the same uniform-mean residual, DESIGN.md §15), reduced
//!   to per-epoch medians. This is the acceptance metric.
//! - **probe metric** — after every epoch, both arms are evaluated on the
//!   same fixed uniformly-drawn held-out batches (shared across arms and
//!   seeds), which removes estimator effects entirely.
//!
//! Every training step evaluates the decoder (and the FD stencil of the
//! equation loss) at `batch_size × queries` points, so cumulative
//! evaluations are proportional to steps and efficiency ratios are ratios
//! of step counts.
//!
//! Run with `--quick` for a CI-sized sanity pass (fewer seeds/epochs) and
//! `--epsilon E` to override the sampler's uniform blend floor.

use meshfreeflownet::autodiff::Graph;
use meshfreeflownet::core::{Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer};
use meshfreeflownet::data::{downsample, make_batch, Batch, Dataset, PatchSampler, PatchSpec};
use meshfreeflownet::solver::{simulate, RbcConfig};
use meshfreeflownet::telemetry::Recorder;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Per-epoch medians of a per-step series.
fn epoch_medians(steps: &[f32], batches_per_epoch: usize) -> Vec<f32> {
    steps
        .chunks(batches_per_epoch)
        .map(|c| {
            let mut v = c.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN losses"));
            v[v.len() / 2]
        })
        .collect()
}

/// First epoch whose value reaches `target`, converted to gradient steps.
fn crossing(series: &[f32], target: f32, batches_per_epoch: usize) -> Option<usize> {
    series.iter().position(|&m| m <= target).map(|e| (e + 1) * batches_per_epoch)
}

/// Median of the trailing quarter of a series — the level an arm "ends at"
/// without letting one lucky epoch move it.
fn tail_level(series: &[f32]) -> f32 {
    let mut t = series[series.len() - series.len() / 4 - 1..].to_vec();
    t.sort_by(|a, b| a.partial_cmp(b).expect("no NaN losses"));
    t[t.len() / 2]
}

/// Trains one arm epoch-by-epoch; returns (per-epoch medians of the
/// per-step equation loss, per-epoch equation loss on the shared probe).
#[allow(clippy::too_many_arguments)]
fn run_arm(
    corpus: &Corpus,
    mcfg: &MfnConfig,
    probe: &[Batch],
    epochs: usize,
    batches_per_epoch: usize,
    seed: u64,
    adaptive: bool,
    epsilon: f32,
) -> (Vec<f32>, Vec<f32>) {
    let tc = TrainConfig {
        epochs: 0,
        batches_per_epoch,
        batch_size: 2,
        lr: 5e-3,
        // Decay chosen so the lr is still ~20% of its initial value at the
        // end of the full 40-epoch window: both arms keep descending and
        // the crossing comparison happens on live curves, not on a
        // schedule-induced plateau where step ratios are noise.
        lr_decay: 0.995,
        seed,
        adaptive_sampling: adaptive,
        sampler_epsilon: epsilon,
        ..Default::default()
    };
    // Generous ring: each step also emits gauges/spans (the adaptive arm
    // adds four sampler gauges per step) and eviction would silently drop
    // the earliest steps from the comparison.
    let (rec, sink) = Recorder::memory(epochs * batches_per_epoch * 8 + 64);
    let mut trainer = Trainer::new(MeshfreeFlowNet::new(mcfg.clone()), tc).with_recorder(rec);
    let mut probe_series = Vec::with_capacity(epochs);
    for e in 1..=epochs {
        // Raising the target and re-entering `train` continues the same
        // run (epoch cursor, RNG stream and lr schedule all persist), so
        // this is identical to one long call with eval points in between.
        trainer.cfg.epochs = e;
        trainer.train(corpus);
        let eq: f32 = probe
            .iter()
            .map(|b| {
                let mut g = Graph::new();
                let (_, comps) =
                    trainer.model.loss_on_batch(&mut g, b, corpus.params(0), corpus.stats, false);
                comps.equation
            })
            .sum::<f32>()
            / probe.len() as f32;
        probe_series.push(eq);
    }
    if adaptive && std::env::var_os("MFN_SAMPLING_TRACE").is_some() {
        use meshfreeflownet::telemetry::Event;
        for name in ["sampler.leaves", "sampler.entropy", "sampler.top_decile_mass"] {
            let last = sink.events().iter().rev().find_map(|e| match e {
                Event::Gauge { name: n, value } if *n == name => Some(*value),
                _ => None,
            });
            eprintln!("[sampling] seed {seed} final {name}: {last:?}");
        }
    }
    let steps: Vec<f32> = sink.train_steps().iter().map(|m| m.loss_equation).collect();
    (epoch_medians(&steps, batches_per_epoch), probe_series)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let quick = argv.iter().any(|a| a == "--quick");
    let epsilon: f32 = argv
        .iter()
        .position(|a| a == "--epsilon")
        .map(|i| argv[i + 1].parse().expect("--epsilon takes a float"))
        .unwrap_or(TrainConfig::default().sampler_epsilon);
    let (epochs, seeds): (usize, &[u64]) =
        if quick { (12, &[11]) } else { (40, &[11, 12, 13, 14, 15]) };
    let batches_per_epoch = 8usize;

    let sim = simulate(
        &RbcConfig { nx: 32, nz: 17, ra: 1e6, dt_max: 2e-3, ..Default::default() },
        2.0,
        17,
    );
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);

    let mut mcfg = MfnConfig::small();
    // Patches span (nearly) the full spatial domain so local (z, x) track
    // physical (z, x): the wall boundary layers and the slowly-drifting
    // plumes are stationary in the octree's patch-local coordinates — the
    // structure the sampler is meant to find. (With a random patch origin
    // the flow structure is smeared out in local coordinates and there is
    // nothing stationary to refine into.)
    mcfg.patch = PatchSpec { nt: 4, nz: 8, nx: 16, queries: 32 };
    mcfg.base_channels = 4;
    mcfg.latent_channels = 8;
    mcfg.mlp_hidden = vec![32, 32];
    mcfg.levels = 2;
    mcfg.gamma = MfnConfig::GAMMA_STAR;
    // Decoder/stencil evaluations per gradient step (both arms identical):
    // batch_size × queries points, each costing one decode for the
    // prediction loss plus the FD stencil decodes of the equation loss.
    let evals_per_step = 2 * mcfg.patch.queries * 2;

    // Held-out probe: fixed uniform batches shared by every arm and seed,
    // drawn from an RNG stream disjoint from all training seeds.
    let sampler = PatchSampler::new(&hr, &lr, mcfg.patch);
    let mut probe_rng = ChaCha8Rng::seed_from_u64(997);
    let probe: Vec<Batch> = (0..8).map(|_| make_batch(&sampler, 4, &mut probe_rng)).collect();

    // Per-seed learning curves for each arm and metric; a single run's
    // crossing time is dominated by that seed's luck, so the headline
    // compares the pointwise-median curves across seeds instead.
    let (mut u_steps_all, mut a_steps_all) = (Vec::new(), Vec::new());
    let (mut u_probe_all, mut a_probe_all) = (Vec::new(), Vec::new());
    for &seed in seeds {
        eprintln!("[sampling] seed {seed}: uniform arm ...");
        let (u_step, u_probe) =
            run_arm(&corpus, &mcfg, &probe, epochs, batches_per_epoch, seed, false, epsilon);
        eprintln!("[sampling] seed {seed}: adaptive arm (epsilon = {epsilon}) ...");
        let (a_step, a_probe) =
            run_arm(&corpus, &mcfg, &probe, epochs, batches_per_epoch, seed, true, epsilon);
        if std::env::var_os("MFN_SAMPLING_TRACE").is_some() {
            eprintln!("[sampling] seed {seed} uniform step medians:  {u_step:.4?}");
            eprintln!("[sampling] seed {seed} adaptive step medians: {a_step:.4?}");
            eprintln!("[sampling] seed {seed} uniform probe:  {u_probe:.4?}");
            eprintln!("[sampling] seed {seed} adaptive probe: {a_probe:.4?}");
        }
        u_steps_all.push(u_step);
        a_steps_all.push(a_step);
        u_probe_all.push(u_probe);
        a_probe_all.push(a_probe);
    }
    // Pointwise median across seeds: epoch e of the "median run".
    let median_curve = |runs: &[Vec<f32>]| -> Vec<f32> {
        (0..epochs)
            .map(|e| {
                let mut v: Vec<f32> = runs.iter().map(|r| r[e]).collect();
                v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN losses"));
                v[v.len() / 2]
            })
            .collect()
    };
    let mut ratios = Vec::new();
    for (name, u_runs, a_runs) in
        [("step metric", &u_steps_all, &a_steps_all), ("probe", &u_probe_all, &a_probe_all)]
    {
        let u = median_curve(u_runs);
        let a = median_curve(a_runs);
        // Target: the level the uniform median curve ends at (median of its
        // last quarter); the ratio compares each curve's *first* crossing.
        let target = tail_level(&u);
        let u_steps = crossing(&u, target, batches_per_epoch)
            .expect("uniform curve reaches its own final level");
        let ratio = match crossing(&a, target, batches_per_epoch) {
            Some(a_steps) => {
                let ratio = u_steps as f64 / a_steps as f64;
                println!(
                    "{name}: uniform {u_steps} steps ({} evals) to eq-loss {target:.4}; \
                     adaptive {a_steps} steps ({} evals) -> {ratio:.2}x fewer evaluations",
                    u_steps * evals_per_step,
                    a_steps * evals_per_step,
                );
                ratio
            }
            None => {
                println!(
                    "{name}: adaptive median curve never reached {target:.4} (best {:.4})",
                    a.iter().cloned().fold(f32::INFINITY, f32::min)
                );
                0.0
            }
        };
        ratios.push(ratio);
    }
    if !quick && ratios[0] < 1.5 {
        eprintln!("[sampling] FAIL: step-metric ratio {:.2}x < 1.5x", ratios[0]);
        std::process::exit(1);
    }
}
