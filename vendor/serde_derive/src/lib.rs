//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` only for plain structs
//! with named fields, so the generated impls need nothing but the struct
//! name, the field names, and whether `#[serde(deny_unknown_fields)]` is
//! present. Per-field types are never parsed: the generated code dispatches
//! through the stub `serde` traits, which the compiler resolves per field.
//! Implemented with `proc_macro` token iteration alone (no syn/quote, which
//! are unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    fields: Vec<String>,
    deny_unknown_fields: bool,
}

fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter();
    let mut deny_unknown_fields = false;
    let mut name = String::new();
    let mut fields = Vec::new();
    while let Some(tt) = iter.next() {
        match tt {
            // Outer attribute: `#` followed by a bracketed group. Doc
            // comments arrive in this form too.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") && body.contains("deny_unknown_fields") {
                        deny_unknown_fields = true;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = n.to_string();
                }
                for tt2 in iter.by_ref() {
                    if let TokenTree::Group(g) = &tt2 {
                        if g.delimiter() == Delimiter::Brace {
                            fields = parse_fields(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }
    if name.is_empty() {
        panic!("serde_derive stub: only structs with named fields are supported");
    }
    StructDef { name, fields, deny_unknown_fields }
}

fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip field attributes and doc comments.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() != '#' {
                break;
            }
            iter.next();
            iter.next(); // the bracketed attribute body
        }
        // Skip visibility: `pub` or `pub(...)`.
        if let Some(TokenTree::Ident(id)) = iter.peek() {
            if id.to_string() == "pub" {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else { break };
        fields.push(field.to_string());
        // Consume `: Type` up to the comma separating fields. Commas inside
        // generics are shielded by tracking `<`/`>` depth; commas inside
        // array types like `[f32; N]` never surface because a bracketed
        // group is a single token.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => continue 'fields,
                    _ => {}
                }
            }
        }
        break; // last field without trailing comma
    }
    fields
}

/// Derives the stub `serde::Serialize` (struct → `Value::Object`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let entries: String = def
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl must parse")
}

/// Derives the stub `serde::Deserialize` (`Value::Object` → struct), with
/// `#[serde(deny_unknown_fields)]` support.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let known: Vec<String> = def.fields.iter().map(|f| format!("\"{f}\"")).collect();
    let deny = if def.deny_unknown_fields {
        format!(
            "for (key, _) in obj.iter() {{\n\
                 if ![{known}].contains(&key.as_str()) {{\n\
                     return Err(::serde::DeError::unknown_field(key));\n\
                 }}\n\
             }}",
            known = known.join(","),
        )
    } else {
        String::new()
    };
    let inits: String =
        def.fields.iter().map(|f| format!("{f}: ::serde::get_field(obj, \"{f}\")?,")).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let obj = value\n\
                     .as_object()\n\
                     .ok_or_else(|| ::serde::DeError::msg(\"expected a JSON object\"))?;\n\
                 {deny}\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl must parse")
}
