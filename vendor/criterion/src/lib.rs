//! Offline stand-in for `criterion`: same macro/builder surface, minimal
//! measurement. Each benchmark runs a short timed loop and prints a
//! mean-per-iteration line; there is no statistics engine, HTML report or
//! comparison store. Good enough to keep `cargo bench` runnable and the
//! bench targets compiling offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Sets iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the time spent per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; warmup here is a single untimed
    /// call inside [`Bencher::iter`].
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Overrides iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: self.sample_size,
            budget: self.measurement_time,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut bencher);
        self.report(&id.0, &bencher);
        self
    }

    /// Runs a benchmark closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size,
            budget: self.measurement_time,
            elapsed: Duration::ZERO,
            done: 0,
        };
        f(&mut bencher, input);
        self.report(&id.0, &bencher);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = if b.done > 0 { b.elapsed / b.done as u32 } else { Duration::ZERO };
        let rate = match (self.throughput, per_iter.as_secs_f64()) {
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("  {:.3} Melem/s", n as f64 / s / 1e6)
            }
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("  {:.3} MiB/s", n as f64 / s / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{}/{id}: {per_iter:?}/iter ({} iters){rate}", self.name, b.done);
    }

    /// Ends the group (upstream finalizes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    budget: Duration,
    elapsed: Duration,
    done: usize,
}

impl Bencher {
    /// Times repeated calls of `f` (one warmup call, then up to the
    /// configured sample count within the time budget).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup, untimed
        let start = Instant::now();
        let mut done = 0usize;
        while done < self.iters && start.elapsed() < self.budget {
            black_box(f());
            done += 1;
        }
        self.elapsed = start.elapsed();
        self.done = done.max(1);
    }
}

/// Declares a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
