//! Offline stand-in for `rand_chacha`: a self-contained ChaCha8 generator.
//!
//! Implements the real ChaCha block function (8 rounds) over a 256-bit key
//! expanded from the seed, with a 64-bit block counter. What the workspace
//! depends on is (a) high-quality deterministic streams from pinned seeds,
//! identical on every target, and (b) `next_u64` composed from two
//! `next_u32` draws low-word-first, which `mfn-core`'s countable `SampleRng`
//! wrapper asserts against. Upstream-stream bit-compatibility is not a goal.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, seeded from 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        // Low word first, so countable wrappers composing from next_u32
        // see the identical byte stream.
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(1);
            (0..64).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(1);
            (0..64).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = ChaCha8Rng::seed_from_u64(2);
            (0..64).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn u64_composes_from_u32_low_first() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        // 40 draws spans two 16-word blocks; clone mid-stream must agree.
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            r.next_u32();
        }
        let mut s = r.clone();
        for _ in 0..20 {
            assert_eq!(r.next_u32(), s.next_u32());
        }
    }
}
