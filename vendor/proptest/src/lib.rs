//! Offline stand-in for `proptest`: the `proptest!` macro surface the
//! workspace uses, run as a deterministic random-case harness.
//!
//! Differences from upstream, deliberately accepted:
//! - no shrinking — a failing case reports its seed/index and inputs are
//!   reproducible because the per-test RNG is seeded from the test name;
//! - strategies are plain samplers (ranges, `collection::vec`, full-range
//!   floats), which covers every strategy expression in this repo.

use std::fmt;

/// Per-test configuration; only `cases` matters here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A stream seeded from the test's name, so every test draws an
    /// independent but reproducible sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 pseudorandom bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64) - (self.start as u64);
                assert!(span > 0, "empty proptest range");
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                assert!(span > 0, "empty proptest range");
                ((self.start as i128) + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(i8, i16, i32, i64, isize);

/// Strategy modules mirroring `proptest::{collection, num}`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`](fn@vec): a fixed length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(strategy, len)` — `len` is a fixed `usize`
    /// or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod num {
    //! Full-range numeric strategies (`prop::num::f32::ANY`, ...).

    /// `f32` strategies.
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Any `f32` bit pattern: finite values, infinities and NaNs all
        /// occur (as with upstream's special-value bias, just uniform).
        pub struct Any;
        /// The any-`f32` strategy value.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits(rng.next_u64() as u32)
            }
        }
    }

    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Any `f64` bit pattern, non-finite included.
        pub struct Any;
        /// The any-`f64` strategy value.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed at case {}/{}: {}",
                               stringify!($name), case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} vs {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Mirrors `proptest::prelude` for the subset above.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}
