//! Offline stand-in for `crossbeam`: the `channel` subset the workspace
//! uses (`unbounded` + send/recv/try_recv), shimmed over `std::sync::mpsc`.

pub mod channel {
    //! MPSC channels with crossbeam's names over std's implementation.

    pub use std::sync::mpsc::{Receiver, Sender};
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
