//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `rand` API it actually uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, half-open and inclusive `gen_range`,
//! and the `Standard` distribution behind `Rng::gen`. Determinism is the
//! contract that matters here — every sampler in the workspace pins seeds —
//! not bit-compatibility with upstream `rand` streams.

pub mod distributions;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a stream of 32/64-bit words.
pub trait RngCore {
    /// Next 32-bit word of the stream.
    fn next_u32(&mut self) -> u32;
    /// Next 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with stream bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be built from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, then builds the
    /// generator. Matches `rand_core`'s scheme conceptually (SplitMix64
    /// word expansion), which is all the workspace's pinned-seed tests
    /// rely on: same u64 in, same stream out, on every target.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution (`f32`/`f64` in
    /// `[0, 1)`, integers uniform over their full range).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            (hi << 32) | lo
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let b = self.next_u32().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
            let w: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f32 = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        // The expansion must be a pure function of the seed.
        struct Raw([u8; 32]);
        impl SeedableRng for Raw {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Raw(seed)
            }
        }
        assert_eq!(Raw::seed_from_u64(42).0, Raw::seed_from_u64(42).0);
        assert_ne!(Raw::seed_from_u64(42).0, Raw::seed_from_u64(43).0);
    }
}
