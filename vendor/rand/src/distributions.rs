//! Distributions and uniform-range sampling for the vendored `rand` stub.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: unit interval for floats, full
/// range for integers, fair coin for `bool`.
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 significant bits, like upstream: exact in f32, uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Range argument forms accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Uniform `u64` in `[0, span)` via 128-bit widening multiply (Lemire's
/// multiply-shift; the bias for spans far below 2^64 is negligible and the
/// draw cost is exactly one `next_u64`). `span = 0` means the full range.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let x = rng.next_u64();
    if span == 0 {
        return x;
    }
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo64 = lo as u64;
                let hi64 = hi as u64;
                // Span of the half-open equivalent; wraps to 0 for the full
                // inclusive u64 range, which uniform_u64 treats as "any".
                let span = if inclusive { (hi64 - lo64).wrapping_add(1) } else { hi64 - lo64 };
                (lo64 + uniform_u64(rng, span)) as Self
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo128 = lo as i128;
                let hi128 = hi as i128;
                let span = (hi128 - lo128 + if inclusive { 1 } else { 0 }) as u64;
                (lo128 + uniform_u64(rng, span) as i128) as Self
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}
