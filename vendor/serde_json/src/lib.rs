//! Offline stand-in for `serde_json` over the stub `serde` Value model:
//! `to_string`, `to_string_pretty` and `from_str`, with a complete JSON
//! parser (escapes, nested containers, integer/float discrimination).
//! Integer values round-trip exactly; floats print via Rust's shortest
//! round-trip `Display` so `f32`-origin values survive a text round trip.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---- writer ----------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                // JSON has no NaN/Infinity; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_container(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(&items[i], out, indent, depth + 1);
            });
        }
        Value::Object(fields) => {
            write_container(out, indent, depth, '{', '}', fields.len(), |out, i| {
                write_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(&fields[i].1, out, indent, depth + 1);
            });
        }
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected '{}' at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error("nesting too deep".into()));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos + 1..].starts_with(b"\\u")
                            {
                                self.pos += 2; // consume `\u` (hex4 advances past digits)
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                            continue; // hex4 already advanced self.pos
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so boundaries
                    // are valid; find the char at this byte offset).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits after the current position (which sits on the
    /// escape letter `u`), leaving `pos` one past the final digit.
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let src = r#"{"a": 1, "b": -2, "c": 3.5, "d": [true, false, null], "e": "x\"\\\n"}"#;
        let v: Value = parse(src).unwrap();
        match &v {
            Value::Object(fields) => {
                assert_eq!(fields[0], ("a".into(), Value::U64(1)));
                assert_eq!(fields[1], ("b".into(), Value::I64(-2)));
                assert_eq!(fields[2], ("c".into(), Value::F64(3.5)));
            }
            other => panic!("expected object, got {other:?}"),
        }
        // Compact re-serialization parses back to the same tree.
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(parse(&out).unwrap(), v);
        // Pretty form too.
        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some(2), 0);
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn u64_seed_roundtrips_exactly() {
        let v = Value::U64(u64::MAX);
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn f32_survives_text_roundtrip() {
        for f in [0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE, 1e30, -2.5e-4] {
            let v = Value::F64(f64::from(f));
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            let back = match parse(&out).unwrap() {
                Value::F64(x) => x as f32,
                Value::U64(x) => x as f32,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(back, f, "{f} failed round trip via {out}");
        }
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\" 1}", "nul", "1e", "--3"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
