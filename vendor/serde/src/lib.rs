//! Offline stand-in for `serde`: a Value-tree data model with
//! `Serialize`/`Deserialize` traits whose derives come from the companion
//! `serde_derive` stub. Wide enough for the workspace's JSON sidecars
//! (plain structs of scalars, strings, vectors and fixed arrays), nothing
//! more. Numbers keep integer/float identity so `u64` seeds round-trip
//! exactly.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON-like value. Object fields preserve insertion order so
/// serialized sidecars are stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error (message-only; the sidecars are small enough that
/// positional context adds nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// Schema-drift error used by `deny_unknown_fields`.
    pub fn unknown_field(name: &str) -> Self {
        DeError(format!("unknown field `{name}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Value-producing serialization.
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Value-consuming deserialization.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up `name` in an object's fields and deserializes it. Used by the
/// derive-generated code.
pub fn get_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    for (key, value) in obj {
        if key == name {
            return T::from_value(value).map_err(|e| DeError::msg(format!("field `{name}`: {e}")));
        }
    }
    Err(DeError::msg(format!("missing field `{name}`")))
}

// ---- Serialize impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

// ---- Deserialize impls -----------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected a boolean")),
        }
    }
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v = match value {
                    Value::U64(v) => *v,
                    // A float that is exactly a non-negative integer is
                    // accepted ("3.0" for a count is a format quirk, not
                    // data loss).
                    Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(DeError::msg("expected an unsigned integer")),
                };
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let v: i64 = match value {
                    Value::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::msg("integer out of range"))?,
                    Value::I64(v) => *v,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::msg("expected an integer")),
                };
                <$t>::try_from(v).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            Value::F64(v) => Ok(*v),
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            _ => Err(DeError::msg("expected a number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected a string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::msg("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| DeError::msg("expected an array"))?;
        if items.len() != N {
            return Err(DeError::msg(format!("expected {N} elements, got {}", items.len())));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into().map_err(|_| DeError::msg("array length mismatch"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
