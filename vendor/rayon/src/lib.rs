//! Offline stand-in for `rayon`: the parallel-iterator entry points the
//! workspace uses, implemented as sequential shims returning the equivalent
//! `std` iterators. On the single-core CI machine this is also the fastest
//! correct implementation; the kernels' chunked structure is preserved so a
//! real rayon can be swapped back in without touching call sites.

/// Number of worker threads a real pool would use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `slice.par_chunks(n)` — sequential shim over [`slice::chunks`].
pub trait ParallelSlice<T> {
    /// Immutable chunks of length `chunk_size` (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `slice.par_chunks_mut(n)` — sequential shim over [`slice::chunks_mut`].
pub trait ParallelSliceMut<T> {
    /// Mutable chunks of length `chunk_size` (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// `collection.par_iter()` — sequential shim over [`slice::iter`].
pub trait IntoParallelRefIterator<T> {
    /// Iterates items by reference.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoParallelRefIterator<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// `collection.into_par_iter()` — sequential shim over [`IntoIterator`].
pub trait IntoParallelIterator {
    /// The underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Consumes `self`, iterating its items.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Iter = std::ops::Range<T>;
    type Item = T;
    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Mirrors `rayon::prelude` for the subset above.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}
