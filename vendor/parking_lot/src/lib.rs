//! Offline stand-in for `parking_lot`: std sync primitives re-surfaced
//! without lock poisoning (a panicking holder just releases the lock).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates an unlocked RwLock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
